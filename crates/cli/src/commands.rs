//! `smx-cli` subcommand implementations.

use crate::args::Args;
use smx::prelude::*;
use smx_io::fasta;
use smx_io::pairs::pair_positional;
use std::fs::File;

/// Top-level usage text.
pub const USAGE: &str = "\
smx-cli: SMX heterogeneous sequence alignment (reproduction)

commands:
  align    --config <cfg> [--algorithm <algo>] [--engine <eng>] [--band N]
           [--window N --overlap N] [--xdrop F] [--workers N] [--score-only]
           [--pretty]
           [--fault-rate F] [--fault-seed N] [--max-retries N] [--backoff N]
           [--watchdog N] [--strict] [--no-degrade]
           <query.fa|fastq> <reference.fa|fastq>
  datagen  --config <cfg> --len N --count N [--profile perfect|moderate|hifi|ont]
           [--sv N] [--seed N] --out <pairs.fa>
  simulate --config <cfg> --len N [--blocks N] [--workers N]
  matrix   --name blosum50|blosum62|pam250 [--out <file>] | --parse <file>
  info

configs:    dna-edit | dna-gap | protein | ascii
algorithms: full | banded | adaptive | xdrop | hirschberg | window
engines:    software | simd | dpx | gmx | smx-1d | smx-2d | smx | gact

fault injection (align): --fault-rate > 0 runs the functional SMX device
with a seeded deterministic fault plan; faulty tiles are retried
(--max-retries, --backoff cycles) and then recomputed in software unless
--strict; --no-degrade fails a poisoned pair closed with a structured
error instead of falling back to a full software alignment.
";

fn parse_config(name: &str) -> Result<AlignmentConfig, String> {
    AlignmentConfig::ALL
        .into_iter()
        .find(|c| c.name() == name)
        .ok_or_else(|| format!("unknown config {name:?} (try dna-edit, dna-gap, protein, ascii)"))
}

fn parse_engine(name: &str) -> Result<EngineKind, String> {
    [
        EngineKind::Software,
        EngineKind::Simd,
        EngineKind::Dpx,
        EngineKind::Gmx,
        EngineKind::Smx1d,
        EngineKind::Smx2d,
        EngineKind::Smx,
        EngineKind::Gact,
    ]
    .into_iter()
    .find(|e| e.name() == name)
    .ok_or_else(|| format!("unknown engine {name:?}"))
}

fn parse_algorithm(args: &Args) -> Result<Algorithm, String> {
    let band = args.get_num("band", 64usize).map_err(|e| e.to_string())?;
    let window = args.get_num("window", 320usize).map_err(|e| e.to_string())?;
    let overlap = args.get_num("overlap", 128usize).map_err(|e| e.to_string())?;
    let xdrop = args.get_num("xdrop", 0.08f64).map_err(|e| e.to_string())?;
    match args.get_or("algorithm", "full") {
        "full" => Ok(Algorithm::Full),
        "banded" => Ok(Algorithm::Banded { band }),
        "adaptive" => Ok(Algorithm::AdaptiveBanded { width: 2 * band + 1 }),
        "xdrop" => Ok(Algorithm::Xdrop { band, fraction: xdrop }),
        "hirschberg" => Ok(Algorithm::Hirschberg),
        "window" => Ok(Algorithm::Window { w: window, o: overlap }),
        other => Err(format!("unknown algorithm {other:?}")),
    }
}

/// Loads records from a FASTA or FASTQ file (by extension).
fn load_records(path: &str) -> Result<Vec<fasta::Record>, String> {
    let file = File::open(path).map_err(|e| format!("{path}: {e}"))?;
    if path.ends_with(".fastq") || path.ends_with(".fq") {
        let records = smx_io::fastq::parse(file).map_err(|e| e.to_string())?;
        Ok(records.into_iter().map(smx_io::fastq::FastqRecord::into_fasta).collect())
    } else {
        fasta::parse(file).map_err(|e| e.to_string())
    }
}

/// `smx-cli align`: align FASTA/FASTQ files record-by-record.
pub fn align(args: &Args) -> Result<(), String> {
    let [_, query_path, ref_path] = args.positional.as_slice() else {
        return Err("align needs <query.fa> <reference.fa>".into());
    };
    let config = parse_config(args.get_or("config", "dna-edit"))?;
    let engine = parse_engine(args.get_or("engine", "smx"))?;
    let algorithm = parse_algorithm(args)?;
    let workers = args.get_num("workers", 4usize).map_err(|e| e.to_string())?;
    let score_only = args.switch("score-only");

    let queries = load_records(query_path)?;
    let references = load_records(ref_path)?;
    let named = pair_positional(&queries, &references, config.alphabet())
        .map_err(|e| e.to_string())?;
    if named.is_empty() {
        return Err("no record pairs to align".into());
    }

    let fault_rate = args.get_num("fault-rate", 0.0f64).map_err(|e| e.to_string())?;
    if fault_rate > 0.0 {
        return align_resilient(args, &named, config, workers, fault_rate);
    }

    let mut aligner = SmxAligner::new(config);
    aligner.algorithm(algorithm).engine(engine).workers(workers).score_only(score_only);
    let pairs: Vec<SeqPair> = named
        .iter()
        .map(|p| SeqPair { query: p.query.clone(), reference: p.reference.clone() })
        .collect();
    let report = aligner.run_batch(&pairs).map_err(|e| e.to_string())?;

    let pretty = args.switch("pretty");
    for (p, o) in named.iter().zip(&report.outcomes) {
        match (&o.score, &o.alignment) {
            (Some(s), Some(a)) => {
                println!("{}\t{}\tscore={s}\tcigar={}", p.query_id, p.reference_id, a.cigar);
                if pretty {
                    match smx::align::pretty::render(&a.cigar, &p.query, &p.reference, 60) {
                        Ok(text) => print!("{text}"),
                        Err(e) => eprintln!("# render failed: {e}"),
                    }
                }
            }
            (Some(s), None) => println!("{}\t{}\tscore={s}", p.query_id, p.reference_id),
            (None, _) => println!("{}\t{}\tdropped", p.query_id, p.reference_id),
        }
    }
    eprintln!(
        "# engine={engine} cycles={:.0} ({:.3} GCUPS at 1 GHz, {} pairs)",
        report.timing.cycles,
        report.gcups(),
        pairs.len()
    );
    Ok(())
}

/// Fault-injection path for `align`: runs the functional SMX device with a
/// seeded fault plan and the tile-retry / software-fallback recovery stack,
/// failing poisoned pairs closed with a per-batch summary.
fn align_resilient(
    args: &Args,
    named: &[smx_io::pairs::NamedPair],
    config: AlignmentConfig,
    workers: usize,
    fault_rate: f64,
) -> Result<(), String> {
    let seed = args.get_num("fault-seed", 42u64).map_err(|e| e.to_string())?;
    let max_retries = args.get_num("max-retries", 2u32).map_err(|e| e.to_string())?;
    let backoff = args.get_num("backoff", 16u64).map_err(|e| e.to_string())?;
    let watchdog = args.get_num("watchdog", 4096u64).map_err(|e| e.to_string())?;
    let policy = RecoveryPolicy {
        max_retries,
        backoff_cycles: backoff,
        watchdog_cycles: watchdog,
        software_fallback: !args.switch("strict"),
    };

    let mut dev = SmxDevice::new(config, workers).map_err(|e| e.to_string())?;
    dev.enable_fault_injection(FaultPlan::new(seed, fault_rate), policy);
    dev.set_graceful_degradation(!args.switch("no-degrade"));

    let pairs: Vec<(Sequence, Sequence)> =
        named.iter().map(|p| (p.query.clone(), p.reference.clone())).collect();
    let report = dev.align_batch(&pairs);

    for (p, outcome) in named.iter().zip(&report.alignments) {
        match outcome {
            Some(a) => {
                println!("{}\t{}\tscore={}\tcigar={}", p.query_id, p.reference_id, a.score, a.cigar)
            }
            None => println!("{}\t{}\tfailed", p.query_id, p.reference_id),
        }
    }
    if !report.failures.is_empty() {
        eprintln!("{}", report.failure_summary());
    }
    let s = &report.recovery;
    eprintln!(
        "# faults: rate={fault_rate:.1e} seed={seed} injected={} detected={} retries={} \
         fallbacks={} software-alignments={} cycles-lost={}",
        s.faults_injected, s.faults_detected, s.retries, s.fallbacks, s.software_alignments,
        s.cycles_lost
    );
    Ok(())
}

/// `smx-cli datagen`: write an interleaved pair FASTA.
pub fn datagen(args: &Args) -> Result<(), String> {
    let config = parse_config(args.get_or("config", "dna-edit"))?;
    let len = args.get_num("len", 1000usize).map_err(|e| e.to_string())?;
    let count = args.get_num("count", 4usize).map_err(|e| e.to_string())?;
    let seed = args.get_num("seed", 42u64).map_err(|e| e.to_string())?;
    let sv = args.get_num("sv", 0usize).map_err(|e| e.to_string())?;
    let out_path = args.get("out").ok_or("datagen needs --out <file>")?;
    let profile = match args.get_or("profile", "moderate") {
        "perfect" => smx::datagen::ErrorProfile::perfect(),
        "moderate" => smx::datagen::ErrorProfile::moderate(),
        "hifi" => smx::datagen::ErrorProfile::pacbio_hifi(),
        "ont" => smx::datagen::ErrorProfile::ont(),
        other => return Err(format!("unknown profile {other:?}")),
    };
    let ds = if sv > 0 {
        Dataset::ont_sv_like(config, len, sv, count, seed)
    } else {
        Dataset::synthetic(config, len, count, profile, seed)
    };
    let mut records = Vec::with_capacity(2 * count);
    for (i, p) in ds.pairs.iter().enumerate() {
        records.push(fasta::Record::new(&format!("q{i}"), &p.query.to_text()));
        records.push(fasta::Record::new(&format!("r{i}"), &p.reference.to_text()));
    }
    let file = File::create(out_path).map_err(|e| format!("{out_path}: {e}"))?;
    fasta::write(file, &records).map_err(|e| e.to_string())?;
    println!("wrote {} records ({count} pairs, {config}) to {out_path}", records.len());
    Ok(())
}

/// `smx-cli simulate`: coprocessor utilization for a block workload.
pub fn simulate(args: &Args) -> Result<(), String> {
    use smx::sim::coproc::{BlockShape, CoprocSim, CoprocTimingConfig};
    let config = parse_config(args.get_or("config", "dna-edit"))?;
    let len = args.get_num("len", 1000usize).map_err(|e| e.to_string())?;
    let blocks = args.get_num("blocks", 8usize).map_err(|e| e.to_string())?;
    let workers = args.get_num("workers", 4usize).map_err(|e| e.to_string())?;
    let ew = config.element_width();
    let sim = CoprocSim::new(CoprocTimingConfig::for_ew(ew, workers));
    let r = sim.simulate_uniform(BlockShape::from_dims(len, len, ew, false), blocks);
    println!("config {config} (EW {ew}), {blocks} blocks of {len}x{len}, {workers} workers");
    println!("  cycles            : {}", r.cycles);
    println!("  tiles             : {}", r.tiles);
    println!("  engine utilization: {:.1}%", r.utilization * 100.0);
    println!("  L2 port busy      : {:.1}%", r.port_utilization * 100.0);
    println!(
        "  throughput        : {:.1} GCUPS at 1 GHz",
        (len * len * blocks) as f64 / r.cycles as f64
    );
    Ok(())
}

/// `smx-cli matrix`: print, export, or validate substitution matrices.
pub fn matrix(args: &Args) -> Result<(), String> {
    use smx::align::SubstMatrix;
    if let Some(path) = args.get("parse") {
        let file = File::open(path).map_err(|e| format!("{path}: {e}"))?;
        let m = smx_io::matrix::parse(file).map_err(|e| e.to_string())?;
        println!(
            "parsed matrix: scores in [{}, {}], symmetric, usable for protein alignment",
            m.min_score(),
            m.max_score()
        );
        return Ok(());
    }
    let name = args.get_or("name", "blosum50");
    let m = match name {
        "blosum50" => SubstMatrix::blosum50(),
        "blosum62" => SubstMatrix::blosum62(),
        "pam250" => SubstMatrix::pam250(),
        other => return Err(format!("unknown matrix {other:?}")),
    };
    match args.get("out") {
        Some(path) => {
            let file = File::create(path).map_err(|e| format!("{path}: {e}"))?;
            smx_io::matrix::write(file, &m).map_err(|e| e.to_string())?;
            println!("wrote {name} to {path}");
        }
        None => {
            smx_io::matrix::write(std::io::stdout().lock(), &m).map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

/// `smx-cli info`: configuration and physical-design summary.
pub fn info() -> Result<(), String> {
    use smx::physical::area::AreaModel;
    let model = AreaModel::new();
    println!("SMX configurations:");
    for c in AlignmentConfig::ALL {
        let ew = c.element_width();
        println!(
            "  {:<9} EW={}  VL={:<3} peak {:>4} GCUPS  pipeline {} cycles",
            c.name(),
            ew,
            ew.vl(),
            ew.vl() * ew.vl(),
            ew.engine_pipeline_depth()
        );
    }
    println!();
    println!("physical design (22nm model):");
    println!("  SMX-1D {:.4} mm^2, SMX-2D {:.4} mm^2, total {:.4} mm^2",
        model.smx1d_area(), model.smx2d_area(), model.total_area());
    println!("  power {:.3} mW at 20% activity", model.power_mw(0.2));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_and_engine_parsing() {
        assert_eq!(parse_config("protein").unwrap(), AlignmentConfig::Protein);
        assert!(parse_config("dna").is_err());
        assert_eq!(parse_engine("smx-1d").unwrap(), EngineKind::Smx1d);
        assert!(parse_engine("tpu").is_err());
    }

    #[test]
    fn algorithm_parsing_with_params() {
        let a = Args::parse(
            ["--algorithm", "banded", "--band", "32"].iter().map(|s| s.to_string()),
            &[],
        )
        .unwrap();
        assert_eq!(parse_algorithm(&a).unwrap(), Algorithm::Banded { band: 32 });
        let w = Args::parse(
            ["--algorithm", "window", "--window", "64", "--overlap", "16"]
                .iter()
                .map(|s| s.to_string()),
            &[],
        )
        .unwrap();
        assert_eq!(parse_algorithm(&w).unwrap(), Algorithm::Window { w: 64, o: 16 });
    }

    #[test]
    fn datagen_then_align_roundtrip() {
        let dir = std::env::temp_dir().join("smx-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let pairs_path = dir.join("pairs.fa");
        let out = pairs_path.to_str().unwrap().to_string();
        let gen_args = Args::parse(
            ["datagen", "--config", "dna-edit", "--len", "120", "--count", "2", "--out", &out]
                .iter()
                .map(|s| s.to_string()),
            &[],
        )
        .unwrap();
        datagen(&gen_args).unwrap();

        // Split interleaved pairs into two files for align.
        let recs = fasta::parse(File::open(&pairs_path).unwrap()).unwrap();
        assert_eq!(recs.len(), 4);
        let qs: Vec<_> = recs.iter().step_by(2).cloned().collect();
        let rs: Vec<_> = recs.iter().skip(1).step_by(2).cloned().collect();
        let qp = dir.join("q.fa");
        let rp = dir.join("r.fa");
        fasta::write(File::create(&qp).unwrap(), &qs).unwrap();
        fasta::write(File::create(&rp).unwrap(), &rs).unwrap();

        let align_args = Args::parse(
            [
                "align",
                "--config",
                "dna-edit",
                "--algorithm",
                "hirschberg",
                qp.to_str().unwrap(),
                rp.to_str().unwrap(),
            ]
            .iter()
            .map(|s| s.to_string()),
            &[],
        )
        .unwrap();
        align(&align_args).unwrap();
    }

    #[test]
    fn align_with_fault_injection_recovers() {
        let dir = std::env::temp_dir().join("smx-cli-faults");
        std::fs::create_dir_all(&dir).unwrap();
        let qp = dir.join("q.fa");
        let rp = dir.join("r.fa");
        std::fs::write(&qp, ">q0\nGATTACAGATTACAGATTACAGATTACA\n").unwrap();
        std::fs::write(&rp, ">r0\nGATTACACATTACAGATTACAGATTACA\n").unwrap();
        let a = Args::parse(
            [
                "align",
                "--config",
                "dna-edit",
                "--fault-rate",
                "0.05",
                "--fault-seed",
                "7",
                qp.to_str().unwrap(),
                rp.to_str().unwrap(),
            ]
            .iter()
            .map(|s| s.to_string()),
            &["strict", "no-degrade"],
        )
        .unwrap();
        align(&a).unwrap();
        // Strict + no-degrade with a certain fault must still complete the
        // batch (failing closed), not error the whole command.
        let b = Args::parse(
            [
                "align",
                "--config",
                "dna-edit",
                "--fault-rate",
                "1.0",
                "--max-retries",
                "0",
                "--strict",
                "--no-degrade",
                qp.to_str().unwrap(),
                rp.to_str().unwrap(),
            ]
            .iter()
            .map(|s| s.to_string()),
            &["strict", "no-degrade"],
        )
        .unwrap();
        align(&b).unwrap();
    }

    #[test]
    fn align_accepts_fastq_queries() {
        let dir = std::env::temp_dir().join("smx-cli-fastq");
        std::fs::create_dir_all(&dir).unwrap();
        let qp = dir.join("q.fastq");
        let rp = dir.join("r.fa");
        std::fs::write(&qp, "@q0\nACGTACGT\n+\nIIIIIIII\n").unwrap();
        std::fs::write(&rp, ">r0\nACGAACGT\n").unwrap();
        let a = Args::parse(
            ["align", "--config", "dna-edit", qp.to_str().unwrap(), rp.to_str().unwrap()]
                .iter()
                .map(|s| s.to_string()),
            &[],
        )
        .unwrap();
        align(&a).unwrap();
    }

    #[test]
    fn simulate_and_info_run() {
        let a = Args::parse(
            ["simulate", "--config", "dna-gap", "--len", "500"].iter().map(|s| s.to_string()),
            &[],
        )
        .unwrap();
        simulate(&a).unwrap();
        info().unwrap();
    }
}
