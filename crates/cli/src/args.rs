//! A small dependency-free argument parser: `--key value`, `--flag`, and
//! positional arguments.

use std::collections::HashMap;

/// Parsed command-line arguments.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    /// Arguments without a leading `--`.
    pub positional: Vec<String>,
    options: HashMap<String, String>,
    switches: Vec<String>,
}

/// Argument-parsing errors with user-facing messages.
#[derive(Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses a token stream. `known_switches` take no value; every other
    /// `--key` consumes the next token as its value.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] when a value-taking option has no value.
    pub fn parse<I: IntoIterator<Item = String>>(
        tokens: I,
        known_switches: &[&str],
    ) -> Result<Args, ArgError> {
        let mut args = Args::default();
        let mut iter = tokens.into_iter();
        while let Some(tok) = iter.next() {
            if let Some(key) = tok.strip_prefix("--") {
                if known_switches.contains(&key) {
                    args.switches.push(key.to_string());
                } else {
                    let value = iter
                        .next()
                        .ok_or_else(|| ArgError(format!("option --{key} needs a value")))?;
                    args.options.insert(key.to_string(), value);
                }
            } else {
                args.positional.push(tok);
            }
        }
        Ok(args)
    }

    /// String option value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// String option with a default.
    #[must_use]
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// Parsed numeric option with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] when the value does not parse.
    pub fn get_num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => {
                v.parse().map_err(|_| ArgError(format!("option --{key} has invalid value {v:?}")))
            }
        }
    }

    /// Whether a switch was given.
    #[must_use]
    pub fn switch(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn mixed_arguments() {
        let a =
            Args::parse(toks("align --config dna-edit --score-only q.fa r.fa"), &["score-only"])
                .unwrap();
        assert_eq!(a.positional, vec!["align", "q.fa", "r.fa"]);
        assert_eq!(a.get("config"), Some("dna-edit"));
        assert!(a.switch("score-only"));
        assert!(!a.switch("verbose"));
    }

    #[test]
    fn numeric_options() {
        let a = Args::parse(toks("--len 1000"), &[]).unwrap();
        assert_eq!(a.get_num("len", 0usize).unwrap(), 1000);
        assert_eq!(a.get_num("count", 7usize).unwrap(), 7);
        let bad = Args::parse(toks("--len abc"), &[]).unwrap();
        assert!(bad.get_num::<usize>("len", 0).is_err());
    }

    #[test]
    fn missing_value_rejected() {
        assert!(Args::parse(toks("--config"), &[]).is_err());
    }
}
