//! `smx-cli`: command-line front end for the SMX reproduction.
//!
//! ```text
//! smx-cli align    --config dna-edit [--algorithm full|banded|xdrop|hirschberg|window]
//!                  [--engine simd|smx-1d|smx-2d|smx] [--band N] [--score-only]
//!                  <query.fa> <reference.fa>
//! smx-cli serve    --config dna-edit --port 0 [--jobs N] [--checkpoint-dir DIR]
//! smx-cli datagen  --config dna-gap --len 1000 --count 4 --profile ont --seed 7 --out pairs.fa
//! smx-cli simulate --config protein --len 1000 --blocks 8 --workers 4
//! smx-cli info
//! ```
//!
//! ## Exit codes
//!
//! `0` success; `2` generic error. Under `--strict`, a batch that ends
//! with failed or shed pairs exits with a *typed* code so pipelines can
//! branch without parsing stderr: `3` pairs shed at admission, `4`
//! deadline exceeded, `5` integrity violation (fail-closed audit). When
//! several apply, the most severe wins: integrity ≻ deadline ≻ shed.
//! `serve` exits `6` when a second SIGTERM/SIGINT lands mid-drain and
//! forces an immediate stop (acked pairs stay durable; resume replays
//! them).

mod args;
mod commands;

use args::Args;
use commands::CliError;

fn main() {
    let tokens: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(tokens) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {}", e.message);
            e.code
        }
    };
    std::process::exit(code);
}

fn run(tokens: Vec<String>) -> Result<(), CliError> {
    let args = Args::parse(
        tokens,
        &[
            "score-only",
            "pretty",
            "help",
            "strict",
            "no-degrade",
            "shed",
            "breaker",
            "quarantine",
            "resume-sessions",
        ],
    )
    .map_err(|e| e.to_string())?;
    if args.switch("help") || args.positional.is_empty() {
        print!("{}", commands::USAGE);
        return Ok(());
    }
    match args.positional[0].as_str() {
        "align" => commands::align(&args),
        "serve" => commands::serve(&args),
        "datagen" => commands::datagen(&args),
        "simulate" => commands::simulate(&args),
        "matrix" => commands::matrix(&args),
        "info" => commands::info(),
        other => Err(format!("unknown command {other:?}; try --help").into()),
    }
}
