//! SoC-level composition (paper §6 Fig. 8b, §9.1): the heterogeneous
//! CPU + SMX-2D software pipeline, and multicore scaling under a shared
//! DRAM bandwidth budget.

/// Per-alignment-task timing components, in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TaskTiming {
    /// Core work before offload (packing, scheduling, heuristics).
    pub cpu_pre: f64,
    /// Coprocessor busy time for the task's DP-blocks.
    pub coproc: f64,
    /// Core work after completion (traceback, reductions, drop checks).
    pub cpu_post: f64,
}

/// Simulates the two-resource software pipeline of Fig. 8b: the core is a
/// serial resource; the coprocessor can hold `coproc_slots` tasks in
/// flight (its workers). Returns `(makespan, core_busy, coproc_busy)`.
///
/// Tasks are admitted in order: each task's pre-processing runs on the
/// core, its block computation occupies a coprocessor slot, and its
/// post-processing runs on the core once the blocks complete, interleaved
/// with later tasks' pre-processing.
#[must_use]
pub fn pipeline_makespan(tasks: &[TaskTiming], coproc_slots: usize) -> (f64, f64, f64) {
    let slots = coproc_slots.max(1);
    let mut slot_free = vec![0.0f64; slots];
    let mut cpu_free = 0.0f64;
    let mut core_busy = 0.0f64;
    let mut coproc_busy = 0.0f64;
    let mut post_queue: Vec<(f64, f64)> = Vec::new(); // (ready, duration)
    let mut makespan = 0.0f64;

    for t in tasks {
        // Drain any post-processing that became ready before the core
        // would start this task's pre-processing (FIFO approximation).
        post_queue.sort_by(|a, b| a.0.total_cmp(&b.0));
        while let Some(&(ready, dur)) = post_queue.first() {
            if ready <= cpu_free {
                post_queue.remove(0);
                let start = cpu_free.max(ready);
                cpu_free = start + dur;
                core_busy += dur;
                makespan = makespan.max(cpu_free);
            } else {
                break;
            }
        }
        // Pre-processing on the core.
        let pre_start = cpu_free;
        cpu_free = pre_start + t.cpu_pre;
        core_busy += t.cpu_pre;
        // Coprocessor slot.
        let (slot_idx, _) = slot_free
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("at least one slot");
        let c_start = slot_free[slot_idx].max(cpu_free);
        let c_end = c_start + t.coproc;
        slot_free[slot_idx] = c_end;
        coproc_busy += t.coproc;
        makespan = makespan.max(c_end);
        // Post-processing queued for the core.
        post_queue.push((c_end, t.cpu_post));
    }
    // Drain remaining post-processing.
    post_queue.sort_by(|a, b| a.0.total_cmp(&b.0));
    for (ready, dur) in post_queue {
        let start = cpu_free.max(ready);
        cpu_free = start + dur;
        core_busy += dur;
        makespan = makespan.max(cpu_free);
    }
    (makespan.max(1.0), core_busy, coproc_busy)
}

/// One core's share of a multicore workload.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CoreWork {
    /// Compute cycles the core needs in isolation.
    pub cycles: f64,
    /// DRAM bytes the core moves, spread over its execution.
    pub dram_bytes: f64,
}

/// Fluid multicore simulation under a shared DRAM bandwidth budget:
/// every active core issues memory traffic at its isolated rate; whenever
/// the aggregate rate exceeds `dram_bytes_per_cycle`, all active cores
/// slow down proportionally. Returns each core's finish time.
///
/// This refines [`multicore_speedup`] by handling heterogeneous per-core
/// work and the tail effect (bandwidth frees up as cores finish).
#[must_use]
pub fn multicore_makespan(work: &[CoreWork], dram_bytes_per_cycle: f64) -> Vec<f64> {
    let n = work.len();
    let mut remaining: Vec<f64> = work.iter().map(|w| w.cycles.max(0.0)).collect();
    let mut finish = vec![0.0f64; n];
    let mut now = 0.0f64;
    loop {
        let active: Vec<usize> = (0..n).filter(|&i| remaining[i] > 1e-9).collect();
        if active.is_empty() {
            break;
        }
        // Aggregate demand rate of the active cores (bytes per cycle).
        let demand: f64 = active
            .iter()
            .map(|&i| if work[i].cycles <= 0.0 { 0.0 } else { work[i].dram_bytes / work[i].cycles })
            .sum();
        let slowdown = (demand / dram_bytes_per_cycle.max(1e-9)).max(1.0);
        // Advance until the next active core finishes at the scaled rate.
        let step = active.iter().map(|&i| remaining[i] * slowdown).fold(f64::INFINITY, f64::min);
        now += step;
        for &i in &active {
            remaining[i] -= step / slowdown;
            if remaining[i] <= 1e-9 {
                remaining[i] = 0.0;
                finish[i] = now;
            }
        }
    }
    finish
}

/// Multicore speedup with a shared DRAM bandwidth budget.
///
/// `single_core_cycles` is one core's makespan for its share of the work;
/// `dram_bytes` the DRAM traffic that work generates. Scaling is linear
/// until the aggregate bandwidth demand saturates
/// `dram_bytes_per_cycle`.
#[must_use]
pub fn multicore_speedup(
    single_core_cycles: f64,
    dram_bytes: f64,
    cores: usize,
    dram_bytes_per_cycle: f64,
) -> f64 {
    let n = cores as f64;
    let demand = n * dram_bytes / single_core_cycles.max(1.0);
    let slowdown = (demand / dram_bytes_per_cycle).max(1.0);
    n / slowdown
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_when_core_dominates() {
        let tasks = vec![TaskTiming { cpu_pre: 100.0, coproc: 10.0, cpu_post: 50.0 }; 10];
        let (makespan, core_busy, _) = pipeline_makespan(&tasks, 4);
        // Core work is 1500; makespan cannot beat it.
        assert!(makespan >= 1500.0);
        assert!((core_busy - 1500.0).abs() < 1e-6);
    }

    #[test]
    fn overlap_hides_coproc_time() {
        let tasks = vec![TaskTiming { cpu_pre: 50.0, coproc: 100.0, cpu_post: 50.0 }; 20];
        let (makespan, ..) = pipeline_makespan(&tasks, 4);
        let serial: f64 = tasks.iter().map(|t| t.cpu_pre + t.coproc + t.cpu_post).sum();
        assert!(makespan < 0.8 * serial, "makespan {makespan} vs serial {serial}");
    }

    #[test]
    fn coproc_bound_when_blocks_dominate() {
        let tasks = vec![TaskTiming { cpu_pre: 1.0, coproc: 1000.0, cpu_post: 1.0 }; 8];
        let (makespan, _, coproc_busy) = pipeline_makespan(&tasks, 4);
        // 8 tasks on 4 slots of 1000 cycles => at least 2000 cycles.
        assert!(makespan >= 2000.0);
        assert!((coproc_busy - 8000.0).abs() < 1e-6);
        assert!(makespan < 2200.0, "{makespan}");
    }

    #[test]
    fn single_slot_serializes_coproc() {
        let tasks = vec![TaskTiming { cpu_pre: 0.0, coproc: 100.0, cpu_post: 0.0 }; 5];
        let (m1, ..) = pipeline_makespan(&tasks, 1);
        let (m4, ..) = pipeline_makespan(&tasks, 4);
        assert!(m1 >= 500.0);
        assert!(m4 < m1);
    }

    #[test]
    fn fluid_sim_linear_when_unconstrained() {
        let work = vec![CoreWork { cycles: 1000.0, dram_bytes: 100.0 }; 8];
        let finish = multicore_makespan(&work, 23.9);
        for f in finish {
            assert!((f - 1000.0).abs() < 1e-6, "{f}");
        }
    }

    #[test]
    fn fluid_sim_saturates_and_recovers() {
        // 8 cores each demanding 10 B/cycle against a 23.9 B/cycle budget:
        // 3.35x oversubscribed while all run.
        let work = vec![CoreWork { cycles: 1000.0, dram_bytes: 10_000.0 }; 8];
        let finish = multicore_makespan(&work, 23.9);
        let makespan = finish.iter().fold(0.0f64, |a, &b| a.max(b));
        let expect = 1000.0 * 8.0 * 10.0 / 23.9; // fully bandwidth-bound
        assert!((makespan - expect).abs() / expect < 0.01, "{makespan} vs {expect}");
    }

    #[test]
    fn fluid_sim_tail_effect() {
        // One memory-heavy core plus one light core: the light core
        // finishes first and frees bandwidth for the heavy one.
        let work = vec![
            CoreWork { cycles: 1000.0, dram_bytes: 30_000.0 },
            CoreWork { cycles: 100.0, dram_bytes: 100.0 },
        ];
        let finish = multicore_makespan(&work, 23.9);
        assert!(finish[1] < finish[0]);
        // The heavy core alone demands 30 B/c > 23.9: bounded by bandwidth.
        assert!(finish[0] >= 30_000.0 / 23.9 - 1.0);
    }

    #[test]
    fn speedup_linear_under_low_bandwidth() {
        let s = multicore_speedup(1_000_000.0, 1000.0, 8, 23.9);
        assert!((s - 8.0).abs() < 1e-9);
    }

    #[test]
    fn speedup_saturates_at_bandwidth() {
        // Each core demands 20 B/cycle; 8 cores demand 160 >> 23.9.
        let s = multicore_speedup(100.0, 2000.0, 8, 23.9);
        assert!(s < 2.0, "{s}");
    }
}
