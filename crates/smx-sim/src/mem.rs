//! Memory-hierarchy model (paper Table 1): a functional set-associative
//! cache for line-level simulations and an analytic parameter set used by
//! the loop-level CPU model.

/// Cache line size in bytes, shared across the SoC model.
pub const LINE_BYTES: u64 = 64;

/// A set-associative cache with LRU replacement, tracking real line
/// addresses.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: Vec<Vec<u64>>, // per set: tags, most-recent last
    assoc: usize,
    set_count: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Builds a cache of `size_bytes` with `assoc` ways.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero ways or fewer than one
    /// set).
    #[must_use]
    pub fn new(size_bytes: u64, assoc: usize) -> Cache {
        assert!(assoc > 0, "associativity must be positive");
        let set_count = size_bytes / LINE_BYTES / assoc as u64;
        assert!(set_count > 0, "cache too small for its associativity");
        Cache {
            sets: vec![Vec::with_capacity(assoc); set_count as usize],
            assoc,
            set_count,
            hits: 0,
            misses: 0,
        }
    }

    /// Accesses the line containing `addr`; returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / LINE_BYTES;
        let set = &mut self.sets[(line % self.set_count) as usize];
        if let Some(pos) = set.iter().position(|&t| t == line) {
            let tag = set.remove(pos);
            set.push(tag);
            self.hits += 1;
            true
        } else {
            if set.len() == self.assoc {
                set.remove(0);
            }
            set.push(line);
            self.misses += 1;
            false
        }
    }

    /// Hits recorded so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in `[0, 1]` (0 when never accessed).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Analytic parameters of the Table-1 hierarchy at the 1 GHz design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemParams {
    /// L1 data cache capacity (bytes).
    pub l1_bytes: u64,
    /// L1 hit latency (cycles).
    pub l1_latency: f64,
    /// Private L2 capacity (bytes).
    pub l2_bytes: u64,
    /// L2 hit latency (cycles).
    pub l2_latency: f64,
    /// Shared LLC capacity per core (bytes).
    pub llc_bytes: u64,
    /// LLC hit latency (cycles).
    pub llc_latency: f64,
    /// DRAM access latency (cycles).
    pub dram_latency: f64,
    /// DRAM bandwidth in bytes per cycle (23.9 GB/s at 1 GHz ≈ 23.9 B/c).
    pub dram_bytes_per_cycle: f64,
}

impl MemParams {
    /// The Table-1 SoC configuration.
    #[must_use]
    pub fn table1() -> MemParams {
        MemParams {
            l1_bytes: 64 << 10,
            l1_latency: 3.0,
            l2_bytes: 1 << 20,
            l2_latency: 14.0,
            llc_bytes: 1 << 20,
            llc_latency: 34.0,
            dram_latency: 110.0,
            dram_bytes_per_cycle: 23.9,
        }
    }

    /// The Table-2 edge-processor configuration (32 KB L1, no L2/LLC —
    /// modelled as a small L2 standing in for its 16-MSHR memory path).
    #[must_use]
    pub fn table2() -> MemParams {
        MemParams {
            l1_bytes: 32 << 10,
            l1_latency: 3.0,
            l2_bytes: 256 << 10,
            l2_latency: 20.0,
            llc_bytes: 256 << 10,
            llc_latency: 20.0,
            dram_latency: 140.0,
            dram_bytes_per_cycle: 8.0,
        }
    }

    /// Latency (cycles) of the shallowest level whose capacity holds a
    /// working set of `bytes`.
    #[must_use]
    pub fn service_latency(&self, bytes: u64) -> f64 {
        if bytes <= self.l1_bytes {
            self.l1_latency
        } else if bytes <= self.l2_bytes {
            self.l2_latency
        } else if bytes <= self.llc_bytes + self.l2_bytes {
            self.llc_latency
        } else {
            self.dram_latency
        }
    }

    /// Extra latency beyond an L1 hit for the level serving `bytes`.
    #[must_use]
    pub fn miss_penalty(&self, bytes: u64) -> f64 {
        (self.service_latency(bytes) - self.l1_latency).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_hits_after_fill() {
        let mut c = Cache::new(4096, 4);
        assert!(!c.access(0));
        assert!(c.access(8)); // same line
        assert!(c.access(63));
        assert!(!c.access(64)); // next line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        // 2 sets, 2-way: lines mapping to set 0 are even line numbers.
        let mut c = Cache::new(4 * 64, 2);
        let line = |n: u64| n * 2 * LINE_BYTES; // all map to the same set
        assert!(!c.access(line(0)));
        assert!(!c.access(line(1)));
        assert!(c.access(line(0))); // refresh 0, making 1 the LRU
        assert!(!c.access(line(2))); // evicts 1
        assert!(c.access(line(0)));
        assert!(!c.access(line(1)));
    }

    #[test]
    fn streaming_larger_than_cache_always_misses_on_revisit() {
        let mut c = Cache::new(1024, 4); // 16 lines
        for pass in 0..2 {
            for i in 0..32u64 {
                let hit = c.access(i * LINE_BYTES);
                assert!(!hit, "pass {pass} line {i}");
            }
        }
        assert_eq!(c.hit_rate(), 0.0);
    }

    #[test]
    fn working_set_within_cache_hits_on_second_pass() {
        let mut c = Cache::new(4096, 4); // 64 lines
        for i in 0..32u64 {
            c.access(i * LINE_BYTES);
        }
        let before = c.hits();
        for i in 0..32u64 {
            assert!(c.access(i * LINE_BYTES));
        }
        assert_eq!(c.hits(), before + 32);
    }

    #[test]
    fn service_latency_tiers() {
        let m = MemParams::table1();
        assert_eq!(m.service_latency(1024), 3.0);
        assert_eq!(m.service_latency(128 << 10), 14.0);
        assert_eq!(m.service_latency(1536 << 10), 34.0);
        assert_eq!(m.service_latency(1 << 30), 110.0);
        assert_eq!(m.miss_penalty(1024), 0.0);
        assert!(m.miss_penalty(1 << 30) > 100.0);
    }
}
