//! A detailed micro-op list scheduler used to *validate* the analytic
//! loop-timing model in [`crate::cpu`].
//!
//! The analytic model claims a loop's steady state converges to
//! `max(resource II, recurrence II)`; this module schedules every
//! micro-op of every iteration explicitly (dataflow order, per-class
//! functional-unit capacity, issue width — an idealized out-of-order
//! core with an unbounded window) and the test suite checks the two
//! agree. Harnesses use the analytic model; this one exists so the
//! substitution for gem5 is itself tested, not just asserted.

use crate::cpu::{CpuConfig, UopClass};
// LINT: allow(determinism) keyed access only; these maps are never iterated
use std::collections::HashMap;

/// One micro-op of a loop body.
#[derive(Debug, Clone)]
pub struct DetailedUop {
    /// Functional-unit class.
    pub class: UopClass,
    /// Execution latency in cycles.
    pub latency: u64,
    /// Indices of same-iteration uops this one consumes.
    pub deps: Vec<usize>,
    /// Indices of *previous-iteration* uops this one consumes
    /// (loop-carried dependencies).
    pub carried: Vec<usize>,
}

impl DetailedUop {
    /// A uop with no dependencies.
    #[must_use]
    pub fn free(class: UopClass, latency: u64) -> DetailedUop {
        DetailedUop { class, latency, deps: Vec::new(), carried: Vec::new() }
    }
}

/// Schedules `iterations` copies of `body` and returns the makespan in
/// cycles.
///
/// # Panics
///
/// Panics if a dependency index is out of range (a malformed body).
#[must_use]
pub fn simulate_loop(body: &[DetailedUop], iterations: usize, cpu: &CpuConfig) -> u64 {
    let width = cpu.width as u64;
    // LINT: allow(determinism) keyed access only; these maps are never iterated
    let capacity: HashMap<UopClass, u64> = UopClass::ALL
        .iter()
        .map(|&c| {
            let t = cpu.throughput.iter().find(|(k, _)| *k == c).map(|&(_, v)| v).unwrap_or(1.0);
            (c, t.max(1.0) as u64)
        })
        .collect();

    // Per-cycle issue bookkeeping (grows as needed).
    let mut issued_total: Vec<u64> = Vec::new();
    // LINT: allow(determinism) keyed access only; these maps are never iterated
    let mut issued_class: HashMap<(u64, UopClass), u64> = HashMap::new();
    let mut completion_prev: Vec<u64> = vec![0; body.len()];
    let mut makespan = 0u64;

    for iter in 0..iterations {
        let mut completion_cur: Vec<u64> = vec![0; body.len()];
        for (j, uop) in body.iter().enumerate() {
            let mut ready = 0u64;
            for &d in &uop.deps {
                assert!(d < j, "same-iteration deps must point backward");
                ready = ready.max(completion_cur[d]);
            }
            if iter > 0 {
                for &d in &uop.carried {
                    assert!(d < body.len(), "carried dep out of range");
                    ready = ready.max(completion_prev[d]);
                }
            }
            // Find the first cycle >= ready with both width and class
            // capacity available.
            let cap = capacity[&uop.class];
            let mut t = ready;
            loop {
                if t as usize >= issued_total.len() {
                    issued_total.resize(t as usize + 1, 0);
                }
                let class_used = issued_class.get(&(t, uop.class)).copied().unwrap_or(0);
                if issued_total[t as usize] < width && class_used < cap {
                    issued_total[t as usize] += 1;
                    *issued_class.entry((t, uop.class)).or_insert(0) += 1;
                    break;
                }
                t += 1;
            }
            completion_cur[j] = t + uop.latency;
            makespan = makespan.max(completion_cur[j]);
        }
        completion_prev = completion_cur;
    }
    makespan
}

/// Steady-state cycles per iteration measured over the tail of a run
/// (skips warm-up iterations).
#[must_use]
pub fn measured_ii(body: &[DetailedUop], cpu: &CpuConfig) -> f64 {
    const WARMUP: usize = 32;
    const MEASURE: usize = 256;
    let short = simulate_loop(body, WARMUP, cpu);
    let long = simulate_loop(body, WARMUP + MEASURE, cpu);
    (long - short) as f64 / MEASURE as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{iteration_cycles, LoopKernel};
    use crate::mem::MemParams;

    fn cpu() -> CpuConfig {
        CpuConfig::table1_ooo()
    }

    /// Converts a detailed body into the analytic kernel description.
    fn analytic_of(body: &[DetailedUop], recurrence: f64) -> LoopKernel {
        let mut counts: HashMap<UopClass, f64> = HashMap::new();
        for u in body {
            *counts.entry(u.class).or_insert(0.0) += 1.0;
        }
        LoopKernel::compute_only("detailed", 1.0, counts.into_iter().collect(), recurrence)
    }

    #[test]
    fn resource_bound_loop_matches_analytic() {
        // 12 independent ALU ops: bound by 4 ALUs -> II = 3.
        let body: Vec<DetailedUop> =
            (0..12).map(|_| DetailedUop::free(UopClass::IntAlu, 1)).collect();
        let measured = measured_ii(&body, &cpu());
        let analytic = iteration_cycles(&analytic_of(&body, 0.0), &cpu(), &MemParams::table1());
        assert!((measured - analytic).abs() / analytic < 0.10, "{measured} vs {analytic}");
        assert!((measured - 3.0).abs() < 0.3);
    }

    #[test]
    fn recurrence_bound_loop_matches_analytic() {
        // One SMX op feeding itself across iterations with latency 4:
        // II = 4 regardless of width.
        let body =
            vec![DetailedUop { class: UopClass::Smx, latency: 4, deps: vec![], carried: vec![0] }];
        let measured = measured_ii(&body, &cpu());
        assert!((measured - 4.0).abs() < 0.2, "{measured}");
        let analytic = iteration_cycles(&analytic_of(&body, 4.0), &cpu(), &MemParams::table1());
        assert!((measured - analytic).abs() / analytic < 0.10, "{measured} vs {analytic}");
    }

    #[test]
    fn chained_recurrence_across_two_ops() {
        // op0 (latency 2) -> op1 (latency 3) -> next iteration's op0:
        // recurrence II = 5.
        let body = vec![
            DetailedUop { class: UopClass::Smx, latency: 2, deps: vec![], carried: vec![1] },
            DetailedUop { class: UopClass::IntAlu, latency: 3, deps: vec![0], carried: vec![] },
        ];
        let measured = measured_ii(&body, &cpu());
        assert!((measured - 5.0).abs() < 0.3, "{measured}");
    }

    #[test]
    fn width_bound_loop() {
        // 16 independent ops of mixed classes on an 8-wide core: II = 2.
        let mut body = Vec::new();
        for k in 0..16 {
            let class = match k % 4 {
                0 => UopClass::IntAlu,
                1 => UopClass::Branch,
                2 => UopClass::Load,
                _ => UopClass::Simd,
            };
            body.push(DetailedUop::free(class, 1));
        }
        let measured = measured_ii(&body, &cpu());
        let analytic = iteration_cycles(&analytic_of(&body, 0.0), &cpu(), &MemParams::table1());
        assert!((measured - analytic).abs() / analytic < 0.15, "{measured} vs {analytic}");
    }

    #[test]
    fn ksw2_shaped_loop_matches_analytic_model() {
        // The KSW2 kernel shape used by the timing model: a 9-op SIMD
        // dependent chain of 3-cycle ops (recurrence 27) plus overhead.
        let mut body = Vec::new();
        for k in 0..9 {
            let deps = if k == 0 { vec![] } else { vec![k - 1] };
            let carried = if k == 0 { vec![8] } else { vec![] };
            body.push(DetailedUop { class: UopClass::Simd, latency: 3, deps, carried });
        }
        body.push(DetailedUop::free(UopClass::Load, 3));
        body.push(DetailedUop::free(UopClass::Load, 3));
        body.push(DetailedUop::free(UopClass::Store, 1));
        body.push(DetailedUop::free(UopClass::IntAlu, 1));
        body.push(DetailedUop::free(UopClass::Branch, 1));
        let measured = measured_ii(&body, &cpu());
        assert!((measured - 27.0).abs() < 1.5, "measured II {measured}");
    }

    #[test]
    fn inorder_width_one_serializes() {
        let body: Vec<DetailedUop> =
            (0..4).map(|_| DetailedUop::free(UopClass::IntAlu, 1)).collect();
        let measured = measured_ii(&body, &CpuConfig::table2_inorder());
        assert!((measured - 4.0).abs() < 0.2, "{measured}");
    }
}
