//! Loop-level CPU timing model (the Table-1 / Table-2 cores).
//!
//! A software kernel is described by its steady-state loop body: per-class
//! micro-op counts, the loop-carried recurrence latency, per-iteration
//! memory behaviour, and branch-misprediction rate. Cycles per iteration
//! is the maximum of three initiation intervals — resource (functional
//! units and issue width), recurrence (loop-carried dependency chain), and
//! bandwidth (DRAM-bound streaming) — plus the exposed fraction of memory
//! stalls. This is the standard modulo-scheduling bound an out-of-order
//! core's steady state converges to, and it lets 10⁸-cell kernels be
//! timed without per-instruction simulation.

use crate::mem::MemParams;

/// Micro-op classes with distinct functional units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UopClass {
    /// Scalar integer ALU.
    IntAlu,
    /// Integer multiply.
    Mul,
    /// Branch.
    Branch,
    /// Load (address generation + access).
    Load,
    /// Store.
    Store,
    /// 128/256-bit SIMD arithmetic.
    Simd,
    /// SMX-1D custom instruction (`smx.v`/`smx.h`/`smx.redsum`/`smx.pack`).
    Smx,
    /// CSR write (query/reference register loads).
    Csr,
}

impl UopClass {
    /// All classes.
    pub const ALL: [UopClass; 8] = [
        UopClass::IntAlu,
        UopClass::Mul,
        UopClass::Branch,
        UopClass::Load,
        UopClass::Store,
        UopClass::Simd,
        UopClass::Smx,
        UopClass::Csr,
    ];
}

/// Core configuration: issue width and per-class sustained throughputs.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuConfig {
    /// Human-readable name (shown in harness output).
    pub name: &'static str,
    /// Maximum micro-ops issued per cycle.
    pub width: f64,
    /// Per-class sustained throughput (micro-ops per cycle).
    pub throughput: [(UopClass, f64); 8],
    /// Branch-misprediction penalty (cycles).
    pub mispredict_penalty: f64,
    /// Fraction of cache-miss latency the core cannot hide
    /// (0 = perfect overlap, 1 = fully exposed).
    pub exposure: f64,
}

impl CpuConfig {
    /// The Table-1 8-wide out-of-order core.
    #[must_use]
    pub fn table1_ooo() -> CpuConfig {
        CpuConfig {
            name: "8-wide OoO (Table 1)",
            width: 8.0,
            throughput: [
                (UopClass::IntAlu, 4.0),
                (UopClass::Mul, 1.0),
                (UopClass::Branch, 2.0),
                (UopClass::Load, 2.0),
                (UopClass::Store, 1.0),
                (UopClass::Simd, 2.0),
                (UopClass::Smx, 1.0),
                (UopClass::Csr, 1.0),
            ],
            mispredict_penalty: 14.0,
            exposure: 0.35,
        }
    }

    /// The Table-2 in-order single-issue edge core.
    #[must_use]
    pub fn table2_inorder() -> CpuConfig {
        CpuConfig {
            name: "in-order single-issue (Table 2)",
            width: 1.0,
            throughput: [
                (UopClass::IntAlu, 1.0),
                (UopClass::Mul, 1.0),
                (UopClass::Branch, 1.0),
                (UopClass::Load, 1.0),
                (UopClass::Store, 1.0),
                (UopClass::Simd, 1.0),
                (UopClass::Smx, 1.0),
                (UopClass::Csr, 1.0),
            ],
            mispredict_penalty: 7.0,
            exposure: 1.0,
        }
    }

    fn throughput_of(&self, class: UopClass) -> f64 {
        self.throughput.iter().find(|(c, _)| *c == class).map(|&(_, t)| t).unwrap_or(1.0)
    }
}

/// A steady-state loop kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopKernel {
    /// Kernel name (for harness reporting).
    pub name: String,
    /// Number of loop iterations.
    pub iterations: f64,
    /// Per-iteration micro-op counts by class.
    pub ops: Vec<(UopClass, f64)>,
    /// Loop-carried critical-path latency per iteration (cycles).
    pub recurrence_cycles: f64,
    /// Sequentially streamed bytes per iteration.
    pub streamed_bytes: f64,
    /// Irregular (random) accesses per iteration.
    pub random_accesses: f64,
    /// Total working set touched by the kernel (bytes).
    pub working_set: u64,
    /// Branch mispredictions per iteration.
    pub mispredicts: f64,
}

impl LoopKernel {
    /// A kernel with no memory traffic or mispredictions.
    #[must_use]
    pub fn compute_only(
        name: &str,
        iterations: f64,
        ops: Vec<(UopClass, f64)>,
        recurrence: f64,
    ) -> LoopKernel {
        LoopKernel {
            name: name.to_string(),
            iterations,
            ops,
            recurrence_cycles: recurrence,
            streamed_bytes: 0.0,
            random_accesses: 0.0,
            working_set: 0,
            mispredicts: 0.0,
        }
    }

    /// Total micro-ops per iteration.
    #[must_use]
    pub fn uops_per_iter(&self) -> f64 {
        self.ops.iter().map(|&(_, n)| n).sum()
    }
}

/// Cycles per iteration in steady state (the initiation interval plus
/// exposed stalls).
#[must_use]
pub fn iteration_cycles(kernel: &LoopKernel, cpu: &CpuConfig, mem: &MemParams) -> f64 {
    // Resource II: issue width and per-class functional-unit limits.
    let width_ii = kernel.uops_per_iter() / cpu.width;
    let fu_ii = kernel.ops.iter().map(|&(c, n)| n / cpu.throughput_of(c)).fold(0.0f64, f64::max);
    let resource_ii = width_ii.max(fu_ii);

    // Bandwidth II: DRAM-resident working sets are stream-bound.
    let bandwidth_ii = if kernel.working_set > mem.llc_bytes + mem.l2_bytes {
        kernel.streamed_bytes / mem.dram_bytes_per_cycle
    } else {
        0.0
    };

    // Exposed memory stalls.
    let penalty = mem.miss_penalty(kernel.working_set);
    let line_misses = kernel.streamed_bytes / crate::mem::LINE_BYTES as f64;
    let random_stall = kernel.random_accesses * penalty.max(0.0);
    let stall = cpu.exposure * (line_misses * penalty + random_stall)
        + kernel.mispredicts * cpu.mispredict_penalty;

    resource_ii.max(kernel.recurrence_cycles).max(bandwidth_ii) + stall
}

/// Total cycles for a kernel (steady state plus a fixed ramp-up).
#[must_use]
pub fn kernel_cycles(kernel: &LoopKernel, cpu: &CpuConfig, mem: &MemParams) -> f64 {
    const RAMP_CYCLES: f64 = 24.0;
    kernel.iterations * iteration_cycles(kernel, cpu, mem) + RAMP_CYCLES
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> MemParams {
        MemParams::table1()
    }

    #[test]
    fn width_limits_wide_bodies() {
        let k = LoopKernel::compute_only("w", 100.0, vec![(UopClass::IntAlu, 32.0)], 0.0);
        let cpu = CpuConfig::table1_ooo();
        // 32 IntAlu ops, 4 ALUs -> 8 cycles per iteration.
        assert!((iteration_cycles(&k, &cpu, &mem()) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn recurrence_dominates_when_longer() {
        let k = LoopKernel::compute_only("r", 10.0, vec![(UopClass::Simd, 2.0)], 27.0);
        let cpu = CpuConfig::table1_ooo();
        assert!((iteration_cycles(&k, &cpu, &mem()) - 27.0).abs() < 1e-9);
    }

    #[test]
    fn inorder_core_is_slower() {
        let k = LoopKernel::compute_only("x", 10.0, vec![(UopClass::IntAlu, 8.0)], 1.0);
        let fast = kernel_cycles(&k, &CpuConfig::table1_ooo(), &mem());
        let slow = kernel_cycles(&k, &CpuConfig::table2_inorder(), &mem());
        assert!(slow > 2.0 * fast, "{slow} vs {fast}");
    }

    #[test]
    fn dram_working_set_exposes_bandwidth() {
        let mut k = LoopKernel::compute_only("s", 1000.0, vec![(UopClass::Load, 1.0)], 0.0);
        k.streamed_bytes = 64.0;
        k.working_set = 1 << 30;
        let cpu = CpuConfig::table1_ooo();
        let ii = iteration_cycles(&k, &cpu, &mem());
        // Bandwidth bound: 64 B / 23.9 B-per-cycle ≈ 2.7 cycles, plus
        // exposed miss latency.
        assert!(ii > 64.0 / 23.9, "{ii}");
    }

    #[test]
    fn cache_resident_streaming_is_cheap() {
        let mut k = LoopKernel::compute_only("c", 1000.0, vec![(UopClass::Load, 1.0)], 0.0);
        k.streamed_bytes = 8.0;
        k.working_set = 16 << 10; // L1-resident
        let cpu = CpuConfig::table1_ooo();
        let ii = iteration_cycles(&k, &cpu, &mem());
        assert!(ii <= 1.0, "{ii}");
    }

    #[test]
    fn mispredicts_charge_penalty() {
        let mut k = LoopKernel::compute_only("b", 10.0, vec![(UopClass::Branch, 1.0)], 0.0);
        k.mispredicts = 0.5;
        let cpu = CpuConfig::table1_ooo();
        let ii = iteration_cycles(&k, &cpu, &mem());
        assert!((ii - (0.5 + 7.0)).abs() < 1e-9, "{ii}");
    }

    #[test]
    fn kernel_cycles_scale_with_iterations() {
        let k1 = LoopKernel::compute_only("a", 100.0, vec![(UopClass::IntAlu, 4.0)], 0.0);
        let mut k2 = k1.clone();
        k2.iterations = 200.0;
        let cpu = CpuConfig::table1_ooo();
        let c1 = kernel_cycles(&k1, &cpu, &mem());
        let c2 = kernel_cycles(&k2, &cpu, &mem());
        assert!((c2 - c1) > 0.9 * (c1 - 24.0));
    }
}
