//! # smx-sim
//!
//! The performance-simulation substrate replacing the paper's gem5 setup
//! (paper §7, Table 1/Table 2). Three cooperating models:
//!
//! * [`mem`] — a multi-level cache/DRAM model (sizes, associativities and
//!   latencies from Table 1) with a functional set-associative cache for
//!   line-level experiments and an analytic service-latency view for the
//!   loop-level CPU model.
//! * [`cpu`] — a *loop-level* CPU timing model: software kernels are
//!   described as per-iteration micro-op mixes with an explicit
//!   loop-carried recurrence; steady-state cycles-per-iteration is the
//!   maximum of the resource-, recurrence-, and bandwidth-implied
//!   initiation intervals plus exposed memory stalls. This reproduces the
//!   mechanisms an out-of-order core's steady state obeys without
//!   simulating every instruction of a 10K×10K block.
//! * [`coproc`] — a cycle-level event-driven model of the SMX-2D
//!   coprocessor: SMX-workers fetching supertile lines through the shared
//!   L2 port, the pipelined SMX-engine issuing one tile per cycle, and
//!   antidiagonal dependency stalls (paper §5.3, §8.1).
//!
//! [`system`] composes them into the heterogeneous CPU+SMX-2D pipeline of
//! Fig. 8b and the multicore SoC of §9.1.
//!
//! ## Example
//!
//! ```
//! use smx_align_core::ElementWidth;
//! use smx_sim::coproc::{BlockShape, CoprocSim, CoprocTimingConfig};
//!
//! // Four workers streaming 1K x 1K DNA-edit blocks reach ~99% engine
//! // utilization (paper Fig. 10).
//! let sim = CoprocSim::new(CoprocTimingConfig::for_ew(ElementWidth::W2, 4));
//! let shape = BlockShape::from_dims(1000, 1000, ElementWidth::W2, false);
//! let result = sim.simulate_uniform(shape, 8);
//! assert!(result.utilization > 0.9);
//! ```

pub mod coproc;
pub mod cpu;
pub mod detailed;
pub mod mem;
pub mod system;

pub use coproc::{
    BlockShape, CoprocResult, CoprocSim, CoprocTimingConfig, FaultTiming, SimFaultEvent,
};
pub use cpu::{kernel_cycles, CpuConfig, LoopKernel, UopClass};
pub use mem::MemParams;
pub use system::{pipeline_makespan, TaskTiming};
