//! Cycle-level event-driven timing of the SMX-2D coprocessor
//! (paper §5, §8.1): SMX-workers fetch supertile cache lines through the
//! shared L2 port, issue DP-tiles into the pipelined SMX-engine along
//! antidiagonals, and write border lines back. The engine accepts one tile
//! per cycle; a dependent antidiagonal can start only after the previous
//! one's outputs have drained through the pipeline and the worker's
//! forwarding path.

use smx_align_core::ElementWidth;
use smx_coproc::faults::{FaultKind, FaultPlan, RecoveryAction, RecoveryPolicy};
use std::collections::VecDeque;

/// Timing parameters of one SMX-2D instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoprocTimingConfig {
    /// Number of SMX-workers.
    pub workers: usize,
    /// SMX-engine pipeline depth (cycles), per the EW design point.
    pub pipeline_depth: u64,
    /// Border forwarding latency through the worker SRAM (cycles).
    pub forward_latency: u64,
    /// L2 hit latency seen by the coprocessor (cycles).
    pub l2_latency: u64,
    /// Cache lines fetched per supertile (query, reference, two borders).
    pub fetch_lines: u64,
    /// Border lines written back per supertile (score-only mode).
    pub store_lines: u64,
    /// Core-side dispatch cost per block (configuration-register writes).
    pub dispatch_latency: u64,
    /// Whether workers prefetch the next supertile's lines during the
    /// current compute phase (hides the L2 latency; an ablation knob —
    /// the baseline design hides latency with worker count instead).
    pub prefetch: bool,
}

impl CoprocTimingConfig {
    /// The evaluation configuration for a given element width.
    #[must_use]
    pub fn for_ew(ew: ElementWidth, workers: usize) -> CoprocTimingConfig {
        CoprocTimingConfig {
            workers: workers.max(1),
            pipeline_depth: u64::from(ew.engine_pipeline_depth()),
            forward_latency: 2,
            l2_latency: 18,
            fetch_lines: 4,
            store_lines: 2,
            dispatch_latency: 40,
            prefetch: false,
        }
    }
}

/// The tile-grid shape of one DP-block job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockShape {
    /// Tiles along the query dimension.
    pub tile_rows: usize,
    /// Tiles along the reference dimension.
    pub tile_cols: usize,
    /// Tiles per supertile side (8 at a 64-byte line for every EW).
    pub st_side: usize,
    /// Extra border lines stored per supertile (traceback mode).
    pub extra_store_lines: u64,
}

impl BlockShape {
    /// Shape of an `m × n` DP-block at element width `ew`.
    ///
    /// `traceback` adds the interior tile-border writeback traffic.
    #[must_use]
    pub fn from_dims(m: usize, n: usize, ew: ElementWidth, traceback: bool) -> BlockShape {
        let vl = ew.vl();
        let cpl = 512 / ew.bits() as usize; // chars per 64-byte line
        let st_side = (cpl / vl).max(1);
        let tile_rows = m.div_ceil(vl).max(1);
        let tile_cols = n.div_ceil(vl).max(1);
        let extra_store_lines = if traceback {
            let tiles_per_st = (st_side * st_side) as u64;
            let bytes_per_tile = (2 * vl * ew.bits() as usize).div_ceil(8) as u64;
            (tiles_per_st * bytes_per_tile).div_ceil(64)
        } else {
            0
        };
        BlockShape { tile_rows, tile_cols, st_side, extra_store_lines }
    }

    /// Total tiles in the block.
    #[must_use]
    pub fn tiles(&self) -> u64 {
        (self.tile_rows * self.tile_cols) as u64
    }

    fn st_rows(&self) -> usize {
        self.tile_rows.div_ceil(self.st_side)
    }

    fn st_cols(&self) -> usize {
        self.tile_cols.div_ceil(self.st_side)
    }
}

/// Timing view of the fault model: the functional plan/policy from
/// `smx-coproc` plus the cycle cost of a core-side tile recompute (the
/// software fallback), which the functional layer cannot price.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultTiming {
    /// The deterministic fault plan to inject.
    pub plan: FaultPlan,
    /// Tile-level recovery policy (retries, backoff, watchdog).
    pub policy: RecoveryPolicy,
    /// Cycles charged for one software-fallback tile recompute.
    pub fallback_cycles: u64,
}

impl FaultTiming {
    /// A timing config for `plan` under `policy` at element width `ew`:
    /// the software recompute of a `VL × VL` tile is priced at ~2 cycles
    /// per DP-cell on the SMX-1D path.
    #[must_use]
    pub fn for_ew(ew: ElementWidth, plan: FaultPlan, policy: RecoveryPolicy) -> FaultTiming {
        let vl = ew.vl() as u64;
        FaultTiming { plan, policy, fallback_cycles: 2 * vl * vl }
    }
}

/// A cycle-stamped fault record from the detailed simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimFaultEvent {
    /// Cycle at which the fault was detected and resolved.
    pub cycle: u64,
    /// Worker that owned the tile.
    pub worker: usize,
    /// Global tile row within the block.
    pub ti: usize,
    /// Global tile column within the block.
    pub tj: usize,
    /// Zero-based attempt at which the fault fired.
    pub attempt: u32,
    /// The injected failure mode.
    pub kind: FaultKind,
    /// How recovery responded.
    pub action: RecoveryAction,
}

/// Result of simulating a batch of blocks on one coprocessor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoprocResult {
    /// Makespan in cycles.
    pub cycles: u64,
    /// Tiles issued (engine-busy cycles).
    pub tiles: u64,
    /// SMX-engine utilization (tiles / cycles).
    pub utilization: f64,
    /// L2-port grants consumed.
    pub port_grants: u64,
    /// L2-port utilization (grants / cycles).
    pub port_utilization: f64,
}

/// Single-cycle-granularity resource (engine issue slot or L2 port),
/// backed by a growable bitset over cycles.
#[derive(Debug, Default)]
struct Resource {
    words: Vec<u64>,
    grants: u64,
}

impl Resource {
    /// Grants the first free cycle ≥ `t`.
    fn grant(&mut self, t: u64) -> u64 {
        let mut word = (t / 64) as usize;
        let mut mask = !0u64 << (t % 64);
        loop {
            if word >= self.words.len() {
                self.words.resize(word + 1, 0);
            }
            let free = !self.words[word] & mask;
            if free != 0 {
                let pos = free.trailing_zeros();
                self.words[word] |= 1u64 << pos;
                self.grants += 1;
                return word as u64 * 64 + u64::from(pos);
            }
            word += 1;
            mask = !0;
        }
    }

    fn grants(&self) -> u64 {
        self.grants
    }
}

#[derive(Debug)]
enum Phase {
    Fetch { remaining: u64, last_completion: u64 },
    Compute { diag: usize, idx: usize, diag_first_grant: u64, diag_lb: u64, last_grant: u64 },
    Store { remaining: u64 },
}

#[derive(Debug)]
struct SupertileRun {
    k_rows: usize,
    k_cols: usize,
    store_lines: u64,
}

impl SupertileRun {
    fn diag_count(&self) -> usize {
        self.k_rows + self.k_cols - 1
    }

    fn diag_len(&self, d: usize) -> usize {
        let lo = d.saturating_sub(self.k_cols - 1);
        let hi = d.min(self.k_rows - 1);
        hi - lo + 1
    }
}

#[derive(Debug)]
struct WorkerSim {
    blocks: VecDeque<(u64, BlockShape)>,
    shape: Option<BlockShape>,
    job_id: u64,
    st_index: usize, // row-major over the supertile grid
    run: Option<SupertileRun>,
    phase: Phase,
    ready: u64,
    done: bool,
}

impl WorkerSim {
    fn new(blocks: VecDeque<(u64, BlockShape)>) -> WorkerSim {
        let mut w = WorkerSim {
            blocks,
            shape: None,
            job_id: 0,
            st_index: 0,
            run: None,
            phase: Phase::Fetch { remaining: 0, last_completion: 0 },
            ready: 0,
            done: false,
        };
        w.next_block(0, 0);
        w
    }

    fn next_block(&mut self, t: u64, dispatch: u64) {
        match self.blocks.pop_front() {
            Some((job_id, shape)) => {
                self.shape = Some(shape);
                self.job_id = job_id;
                self.st_index = 0;
                self.ready = t + dispatch;
                self.start_supertile();
            }
            None => {
                self.shape = None;
                self.done = true;
            }
        }
    }

    fn start_supertile(&mut self) {
        let shape = self.shape.expect("block active");
        let (si, sj) = (self.st_index / shape.st_cols(), self.st_index % shape.st_cols());
        let k_rows = (shape.tile_rows - si * shape.st_side).min(shape.st_side);
        let k_cols = (shape.tile_cols - sj * shape.st_side).min(shape.st_side);
        self.run = Some(SupertileRun { k_rows, k_cols, store_lines: shape.extra_store_lines });
        self.phase = Phase::Fetch { remaining: 0, last_completion: 0 };
    }
}

/// The SMX-2D timing simulator.
#[derive(Debug, Clone)]
pub struct CoprocSim {
    cfg: CoprocTimingConfig,
}

impl CoprocSim {
    /// Builds a simulator with the given configuration.
    #[must_use]
    pub fn new(cfg: CoprocTimingConfig) -> CoprocSim {
        CoprocSim { cfg }
    }

    /// Simulates a batch of block jobs, distributed round-robin across the
    /// configured workers, and returns the timing result.
    #[must_use]
    pub fn simulate(&self, jobs: &[BlockShape]) -> CoprocResult {
        self.simulate_inner(jobs, None).0
    }

    /// Simulates the batch under a fault plan: each injected fault costs
    /// its detection latency (watchdog wait for stalls, a pipeline drain
    /// for checksum failures) plus retry backoff or the software-fallback
    /// recompute, serialized on the owning worker. Returns the timing
    /// result and the cycle-stamped fault events in detection order per
    /// worker.
    #[must_use]
    pub fn simulate_with_faults(
        &self,
        jobs: &[BlockShape],
        faults: &FaultTiming,
    ) -> (CoprocResult, Vec<SimFaultEvent>) {
        self.simulate_inner(jobs, Some(faults))
    }

    fn simulate_inner(
        &self,
        jobs: &[BlockShape],
        faults: Option<&FaultTiming>,
    ) -> (CoprocResult, Vec<SimFaultEvent>) {
        let cfg = self.cfg;
        let mut events: Vec<SimFaultEvent> = Vec::new();
        let mut queues: Vec<VecDeque<(u64, BlockShape)>> = vec![VecDeque::new(); cfg.workers];
        for (i, &j) in jobs.iter().enumerate() {
            queues[i % cfg.workers].push_back((i as u64, j));
        }
        let mut workers: Vec<WorkerSim> = queues.into_iter().map(WorkerSim::new).collect();
        let mut engine = Resource::default();
        let mut port = Resource::default();
        let mut makespan: u64 = 0;

        // Pick the non-done worker with the earliest ready time, until all
        // workers drain.
        while let Some(w_idx) = workers
            .iter()
            .enumerate()
            .filter(|(_, w)| !w.done)
            .min_by_key(|(i, w)| (w.ready, *i))
            .map(|(i, _)| i)
        {
            let fetch_total = cfg.fetch_lines;
            let w = &mut workers[w_idx];
            let t = w.ready;
            let store_total = cfg.store_lines + w.run.as_ref().map_or(0, |r| r.store_lines);
            match &mut w.phase {
                Phase::Fetch { remaining, last_completion } => {
                    if *remaining == 0 {
                        *remaining = fetch_total;
                        *last_completion = 0;
                    }
                    let g = port.grant(t);
                    // With prefetching the data was requested during the
                    // previous supertile's compute; only the port slot is
                    // paid here.
                    *last_completion = if cfg.prefetch { g + 1 } else { g + cfg.l2_latency };
                    *remaining -= 1;
                    makespan = makespan.max(*last_completion);
                    if *remaining == 0 {
                        let fetch_done = *last_completion;
                        w.phase = Phase::Compute {
                            diag: 0,
                            idx: 0,
                            diag_first_grant: 0,
                            diag_lb: fetch_done,
                            last_grant: 0,
                        };
                        w.ready = fetch_done;
                    } else {
                        w.ready = g + 1;
                    }
                }
                Phase::Compute { diag, idx, diag_first_grant, diag_lb, last_grant } => {
                    let run = w.run.as_ref().expect("supertile active");
                    let lb = if *idx == 0 { *diag_lb } else { (*last_grant) + 1 };
                    let g = engine.grant(lb.max(t));
                    // Fault handling serializes on the owning worker: each
                    // firing costs its detection latency (watchdog wait or
                    // pipeline drain) plus retry backoff or the software
                    // fallback recompute.
                    let mut delay = 0u64;
                    if let Some(ft) = faults {
                        let shape = w.shape.expect("block active");
                        let (si, sj) = (w.st_index / shape.st_cols(), w.st_index % shape.st_cols());
                        let lo = diag.saturating_sub(run.k_cols - 1);
                        let li = lo + *idx;
                        let lj = *diag - li;
                        let ti = si * shape.st_side + li;
                        let tj = sj * shape.st_side + lj;
                        let epoch = (w.job_id << 16) | w.st_index as u64;
                        let mut attempt: u32 = 0;
                        while let Some(kind) = ft.plan.draw(epoch, ti, tj, attempt) {
                            delay += match kind {
                                FaultKind::WorkerStall => ft.policy.watchdog_cycles,
                                _ => cfg.pipeline_depth,
                            };
                            let action = if attempt < ft.policy.max_retries {
                                delay += ft.policy.backoff_cycles;
                                RecoveryAction::Retried
                            } else if ft.policy.software_fallback {
                                delay += ft.fallback_cycles;
                                RecoveryAction::FellBack
                            } else {
                                RecoveryAction::Exhausted
                            };
                            events.push(SimFaultEvent {
                                cycle: g + delay,
                                worker: w_idx,
                                ti,
                                tj,
                                attempt,
                                kind,
                                action,
                            });
                            if action != RecoveryAction::Retried {
                                break;
                            }
                            attempt += 1;
                        }
                    }
                    if *idx == 0 {
                        *diag_first_grant = g;
                    }
                    *last_grant = g;
                    *idx += 1;
                    makespan = makespan.max(g + cfg.pipeline_depth + delay);
                    if *idx == run.diag_len(*diag) {
                        *idx = 0;
                        *diag += 1;
                        *diag_lb = *diag_first_grant + cfg.pipeline_depth + cfg.forward_latency;
                        if *diag == run.diag_count() {
                            // Outputs drain after the pipeline depth.
                            w.ready = g + cfg.pipeline_depth + delay;
                            w.phase = Phase::Store { remaining: store_total };
                        } else {
                            w.ready = g + 1 + delay;
                        }
                    } else {
                        w.ready = g + 1 + delay;
                    }
                }
                Phase::Store { remaining } => {
                    let g = port.grant(t);
                    *remaining -= 1;
                    makespan = makespan.max(g + 1);
                    w.ready = g + 1;
                    if *remaining == 0 {
                        let shape = w.shape.expect("block active");
                        w.st_index += 1;
                        if w.st_index == shape.st_rows() * shape.st_cols() {
                            w.next_block(g + 1, cfg.dispatch_latency);
                        } else {
                            w.start_supertile();
                        }
                    }
                }
            }
        }

        let tiles: u64 = jobs.iter().map(BlockShape::tiles).sum();
        let cycles = makespan.max(1);
        let result = CoprocResult {
            cycles,
            tiles,
            utilization: tiles as f64 / cycles as f64,
            port_grants: port.grants(),
            port_utilization: port.grants() as f64 / cycles as f64,
        };
        (result, events)
    }

    /// Convenience: simulate `count` identical blocks.
    #[must_use]
    pub fn simulate_uniform(&self, shape: BlockShape, count: usize) -> CoprocResult {
        self.simulate(&vec![shape; count])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(ew: ElementWidth, workers: usize) -> CoprocSim {
        CoprocSim::new(CoprocTimingConfig::for_ew(ew, workers))
    }

    #[test]
    fn shape_geometry() {
        let s = BlockShape::from_dims(1000, 1000, ElementWidth::W2, false);
        assert_eq!(s.tile_rows, 32); // ceil(1000/32)
        assert_eq!(s.tile_cols, 32);
        assert_eq!(s.st_side, 8);
        assert_eq!(s.tiles(), 1024);
        assert_eq!(s.st_rows(), 4);
    }

    #[test]
    fn st_side_is_8_for_every_width() {
        for ew in ElementWidth::ALL {
            let s = BlockShape::from_dims(10_000, 10_000, ew, false);
            assert_eq!(s.st_side, 8, "{ew}");
        }
    }

    #[test]
    fn single_worker_utilization_on_large_block() {
        // Paper §8.1: one worker reaches 30-45% on large blocks.
        let r = sim(ElementWidth::W2, 1)
            .simulate_uniform(BlockShape::from_dims(10_000, 10_000, ElementWidth::W2, false), 1);
        assert!(r.utilization > 0.25 && r.utilization < 0.55, "utilization {}", r.utilization);
    }

    #[test]
    fn four_workers_reach_high_utilization() {
        // Paper §8.1: 4 workers raise utilization to around 90%.
        let shape = BlockShape::from_dims(10_000, 10_000, ElementWidth::W2, false);
        let r = sim(ElementWidth::W2, 4).simulate_uniform(shape, 4);
        assert!(r.utilization > 0.8, "utilization {}", r.utilization);
    }

    #[test]
    fn utilization_monotone_in_workers() {
        let shape = BlockShape::from_dims(1000, 1000, ElementWidth::W4, false);
        let mut prev = 0.0;
        // Worker counts that divide the job count evenly, so load
        // imbalance does not mask the trend.
        for w in [1usize, 2, 4, 8] {
            let r = sim(ElementWidth::W4, w).simulate_uniform(shape, 8);
            assert!(r.utilization >= prev - 0.02, "workers {w}: {} < {prev}", r.utilization);
            prev = r.utilization;
        }
    }

    #[test]
    fn small_blocks_have_low_utilization() {
        let small = BlockShape::from_dims(100, 100, ElementWidth::W2, false);
        let large = BlockShape::from_dims(10_000, 10_000, ElementWidth::W2, false);
        let rs = sim(ElementWidth::W2, 4).simulate_uniform(small, 16);
        let rl = sim(ElementWidth::W2, 4).simulate_uniform(large, 4);
        assert!(rs.utilization < rl.utilization, "{} vs {}", rs.utilization, rl.utilization);
    }

    #[test]
    fn port_utilization_stays_bounded() {
        // Paper §5.1: even at full occupancy the coprocessor uses ~25% of
        // the L2 port.
        let shape = BlockShape::from_dims(10_000, 10_000, ElementWidth::W2, false);
        let r = sim(ElementWidth::W2, 4).simulate_uniform(shape, 4);
        assert!(r.port_utilization < 0.30, "port {}", r.port_utilization);
    }

    #[test]
    fn engine_never_oversubscribed() {
        let shape = BlockShape::from_dims(500, 500, ElementWidth::W8, false);
        let r = sim(ElementWidth::W8, 8).simulate_uniform(shape, 8);
        assert!(r.utilization <= 1.0 + 1e-9);
        assert!(r.cycles >= r.tiles);
    }

    #[test]
    fn traceback_mode_adds_store_traffic() {
        let s0 = BlockShape::from_dims(1000, 1000, ElementWidth::W2, false);
        let s1 = BlockShape::from_dims(1000, 1000, ElementWidth::W2, true);
        let r0 = sim(ElementWidth::W2, 4).simulate_uniform(s0, 4);
        let r1 = sim(ElementWidth::W2, 4).simulate_uniform(s1, 4);
        assert!(r1.port_grants > r0.port_grants);
    }

    #[test]
    fn fault_free_plan_matches_plain_simulation() {
        let shape = BlockShape::from_dims(1000, 1000, ElementWidth::W2, false);
        let sim = sim(ElementWidth::W2, 4);
        let plain = sim.simulate_uniform(shape, 4);
        let ft =
            FaultTiming::for_ew(ElementWidth::W2, FaultPlan::none(), RecoveryPolicy::default());
        let (faulty, events) = sim.simulate_with_faults(&[shape; 4], &ft);
        assert_eq!(faulty, plain);
        assert!(events.is_empty());
    }

    #[test]
    fn faults_slow_the_batch_and_stamp_events() {
        let shape = BlockShape::from_dims(2000, 2000, ElementWidth::W2, false);
        let jobs = vec![shape; 4];
        let sim = sim(ElementWidth::W2, 4);
        let clean = sim.simulate(&jobs);
        let ft = FaultTiming::for_ew(
            ElementWidth::W2,
            FaultPlan::new(42, 1e-2),
            RecoveryPolicy::default(),
        );
        let (faulty, events) = sim.simulate_with_faults(&jobs, &ft);
        assert!(faulty.cycles > clean.cycles, "{} vs {}", faulty.cycles, clean.cycles);
        assert!(!events.is_empty());
        let (rows, cols) = (shape.tile_rows, shape.tile_cols);
        for e in &events {
            assert!(e.cycle <= faulty.cycles);
            assert!(e.ti < rows && e.tj < cols, "tile ({}, {})", e.ti, e.tj);
        }
        // Deterministic replay: same plan, same events, same makespan.
        let (again, events2) = sim.simulate_with_faults(&jobs, &ft);
        assert_eq!(again, faulty);
        assert_eq!(events2, events);
    }

    #[test]
    fn higher_fault_rate_costs_more_cycles() {
        let shape = BlockShape::from_dims(2000, 2000, ElementWidth::W4, false);
        let jobs = vec![shape; 4];
        let sim = sim(ElementWidth::W4, 4);
        let mut prev = 0u64;
        for rate in [1e-4, 1e-3, 1e-2, 1e-1] {
            let ft = FaultTiming::for_ew(
                ElementWidth::W4,
                FaultPlan::new(7, rate),
                RecoveryPolicy::default(),
            );
            let (r, _) = sim.simulate_with_faults(&jobs, &ft);
            assert!(r.cycles >= prev, "rate {rate}: {} < {prev}", r.cycles);
            prev = r.cycles;
        }
    }

    #[test]
    fn deeper_pipeline_lowers_single_worker_utilization() {
        let mut cfg_shallow = CoprocTimingConfig::for_ew(ElementWidth::W8, 1);
        let mut cfg_deep = cfg_shallow;
        cfg_shallow.pipeline_depth = 3;
        cfg_deep.pipeline_depth = 12;
        let shape = BlockShape::from_dims(4000, 4000, ElementWidth::W8, false);
        let rs = CoprocSim::new(cfg_shallow).simulate_uniform(shape, 1);
        let rd = CoprocSim::new(cfg_deep).simulate_uniform(shape, 1);
        assert!(rd.utilization < rs.utilization);
    }
}
