//! # smx-algos
//!
//! Practical sequence-alignment algorithms (paper §2.3, §9) and the
//! state-of-the-art comparators (§11), with a uniform outcome type that
//! couples functional results (score, CIGAR, recall) to the work profile
//! the timing models consume (cells computed/stored, DP-block list,
//! traceback length).
//!
//! Algorithms: full-matrix, banded, banded + X-drop, Hirschberg, and the
//! GACT-style window heuristic. Engines: software, KSW2-style SIMD, DPX,
//! GMX, SMX-1D, SMX-2D, heterogeneous SMX, GACT, and CUDASW++ (the last
//! four as calibrated timing models per DESIGN.md).
//!
//! ## Example
//!
//! ```
//! use smx_align_core::AlignmentConfig;
//! use smx_algos::{banded, timing};
//!
//! let cfg = AlignmentConfig::DnaEdit;
//! let scheme = cfg.scoring();
//! let q = vec![0u8; 400];
//! let r = vec![0u8; 400];
//! let out = banded::banded_align(&q, &r, &scheme, 32, None, true);
//! assert_eq!(out.score, Some(0));
//! let work = timing::BatchWork::from_outcomes(cfg, false, std::slice::from_ref(&out));
//! let t = timing::estimate(timing::EngineKind::Smx, &work, 4);
//! assert!(t.cycles > 0.0);
//! ```

pub mod adaptive;
pub mod banded;
pub mod baselines;
pub mod full;
pub mod hirschberg;
pub mod mapper;
pub mod metrics;
pub mod simd;
pub mod timing;
pub mod window;
pub mod xdrop;

pub use metrics::AlgoOutcome;
pub use timing::{estimate, BatchWork, EngineKind, TimingReport};
