//! Engine timing models: maps a batch's work profile to simulated cycles
//! on each architecture (paper §7 "Implementations", §11 comparators).
//!
//! Calibration notes (see DESIGN.md): the KSW2 SIMD kernel is limited by
//! its ~9-deep dependent vector chain (≈0.6 GCUPS at 1 GHz, matching the
//! paper's baseline); SMX-1D by the `smx.h → next column` recurrence
//! (≈2.2 cycles/column, plus the submat access in the protein chain); the
//! SMX-2D coprocessor by the cycle-level worker/engine simulation in
//! `smx-sim`.

use crate::metrics::AlgoOutcome;
use smx_align_core::AlignmentConfig;
use smx_sim::coproc::{BlockShape, CoprocSim, CoprocTimingConfig};
use smx_sim::cpu::{kernel_cycles, CpuConfig, LoopKernel, UopClass};
use smx_sim::mem::MemParams;

/// The architecture executing a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Plain scalar software.
    Software,
    /// KSW2-style 128-bit SIMD (the paper's baseline).
    Simd,
    /// DPX-style fused max instructions on the SIMD unit (§11).
    Dpx,
    /// GMX tile ISA extension (§11).
    Gmx,
    /// SMX-1D ISA extension alone.
    Smx1d,
    /// SMX-2D coprocessor with software pre/post-processing.
    Smx2d,
    /// The full heterogeneous SMX (SMX-2D + SMX-1D).
    Smx,
    /// GACT (Darwin) standalone DSA running the window heuristic.
    Gact,
}

impl EngineKind {
    /// Short name for harness output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Software => "software",
            EngineKind::Simd => "simd",
            EngineKind::Dpx => "dpx",
            EngineKind::Gmx => "gmx",
            EngineKind::Smx1d => "smx-1d",
            EngineKind::Smx2d => "smx-2d",
            EngineKind::Smx => "smx",
            EngineKind::Gact => "gact",
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Aggregated work profile of a batch of algorithm outcomes.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchWork {
    /// The alignment configuration (determines EW/VL and kernels).
    pub config: AlignmentConfig,
    /// Whether only scores are needed (no traceback work).
    pub score_only: bool,
    /// Total DP-elements computed.
    pub cells: u64,
    /// DP-blocks to offload, as `(rows, cols)`.
    pub blocks: Vec<(usize, usize)>,
    /// Total traceback steps.
    pub traceback_steps: u64,
    /// Characters packed before offload.
    pub pack_chars: u64,
    /// Largest single-block cell count (working-set driver).
    pub max_block_cells: u64,
}

impl BatchWork {
    /// Builds a work profile from a batch of outcomes.
    #[must_use]
    pub fn from_outcomes(
        config: AlignmentConfig,
        score_only: bool,
        outcomes: &[AlgoOutcome],
    ) -> BatchWork {
        let mut blocks = Vec::new();
        let mut cells = 0u64;
        let mut traceback_steps = 0u64;
        let mut pack_chars = 0u64;
        let mut max_block_cells = 0u64;
        for o in outcomes {
            cells += o.cells_computed;
            traceback_steps += if score_only { 0 } else { o.traceback_steps };
            pack_chars += o.pack_chars;
            for &(r, c) in &o.blocks {
                max_block_cells = max_block_cells.max(r as u64 * c as u64);
                blocks.push((r, c));
            }
        }
        BatchWork {
            config,
            score_only,
            cells,
            blocks,
            traceback_steps,
            pack_chars,
            max_block_cells,
        }
    }
}

/// Simulated timing of a batch on one engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingReport {
    /// Total cycles (makespan) at 1 GHz.
    pub cycles: f64,
    /// Core busy cycles.
    pub cpu_busy: f64,
    /// Coprocessor engine busy cycles (tiles issued).
    pub coproc_busy: f64,
    /// SMX-engine utilization over the makespan (0 when unused).
    pub engine_utilization: f64,
    /// Core busy fraction over the makespan.
    pub core_busy_frac: f64,
}

impl TimingReport {
    /// Giga-cells updated per second at 1 GHz for `cells` of work.
    #[must_use]
    pub fn gcups(&self, cells: u64) -> f64 {
        cells as f64 / self.cycles.max(1.0)
    }
}

fn cpu_only(cycles: f64) -> TimingReport {
    TimingReport {
        cycles,
        cpu_busy: cycles,
        coproc_busy: 0.0,
        engine_utilization: 0.0,
        core_busy_frac: 1.0,
    }
}

/// The CPU-side traceback walk cost (branch-heavy, sequential).
fn traceback_kernel(steps: u64) -> LoopKernel {
    let mut k = LoopKernel::compute_only(
        "traceback-walk",
        steps as f64,
        vec![(UopClass::IntAlu, 6.0), (UopClass::Load, 2.0), (UopClass::Branch, 1.0)],
        6.0,
    );
    k.mispredicts = 0.25;
    k
}

/// Estimates the timing of `work` on `engine` with `workers` SMX-workers
/// on the Table-1 out-of-order SoC.
#[must_use]
pub fn estimate(engine: EngineKind, work: &BatchWork, workers: usize) -> TimingReport {
    estimate_with(engine, work, workers, &CpuConfig::table1_ooo(), &MemParams::table1())
}

/// Estimates the timing of `work` on `engine` for an explicit core/memory
/// configuration (for example the Table-2 in-order edge processor the
/// paper's RTL integrates SMX into).
#[must_use]
pub fn estimate_with(
    engine: EngineKind,
    work: &BatchWork,
    workers: usize,
    cpu: &CpuConfig,
    mem: &MemParams,
) -> TimingReport {
    let cpu = cpu.clone();
    let mem = *mem;
    let ew = work.config.element_width();
    let vl = ew.vl() as f64;
    match engine {
        EngineKind::Software => {
            let mut k = LoopKernel::compute_only(
                "scalar-dp",
                work.cells as f64,
                vec![
                    (UopClass::IntAlu, 6.0),
                    (UopClass::Load, 3.0),
                    (UopClass::Store, 1.0),
                    (UopClass::Branch, 1.0),
                ],
                4.0,
            );
            k.working_set = software_working_set(work, 4);
            k.streamed_bytes = if work.score_only { 0.5 } else { 4.5 };
            let mut cycles = kernel_cycles(&k, &cpu, &mem);
            if !work.score_only {
                cycles += kernel_cycles(&traceback_kernel(work.traceback_steps), &cpu, &mem);
            }
            cpu_only(cycles)
        }
        EngineKind::Simd | EngineKind::Dpx => {
            let iters = work.cells as f64 / 16.0;
            let protein = work.config == AlignmentConfig::Protein;
            let mut k = LoopKernel::compute_only(
                "ksw2-simd",
                iters,
                vec![
                    (UopClass::Simd, 9.0),
                    (UopClass::Load, if protein { 18.0 } else { 2.0 }),
                    (UopClass::Store, if work.score_only { 1.0 } else { 2.0 }),
                    (UopClass::IntAlu, 2.0),
                    (UopClass::Branch, 1.0),
                ],
                // The difference recurrences form a ~9-op dependent vector
                // chain (3-cycle SIMD latency); protein adds 16 serialized
                // scalar substitution-matrix lookups (§8).
                if protein { 27.0 + 16.0 * 7.0 } else { 27.0 },
            );
            k.mispredicts = 0.02;
            k.working_set = software_working_set(work, 1);
            k.streamed_bytes = if work.score_only { 4.0 } else { 20.0 };
            let mut cycles = kernel_cycles(&k, &cpu, &mem);
            if !work.score_only {
                cycles += kernel_cycles(&traceback_kernel(work.traceback_steps), &cpu, &mem);
            }
            if engine == EngineKind::Dpx {
                // DPX fuses the max-of-three ops: the paper measures a
                // 1.07x improvement over the KSW2 baseline (§11).
                cycles /= 1.07;
            }
            cpu_only(cycles)
        }
        EngineKind::Gmx => {
            // 32x32 edit-distance tiles issued from the scalar pipeline;
            // CPU dependencies limit occupancy to ~11% (§11).
            let tiles = (work.cells as f64 / 1024.0).max(1.0);
            let mut k = LoopKernel::compute_only(
                "gmx-tiles",
                tiles,
                vec![
                    (UopClass::Smx, 1.0),
                    (UopClass::IntAlu, 4.0),
                    (UopClass::Load, 2.0),
                    (UopClass::Store, 1.0),
                    (UopClass::Branch, 1.0),
                ],
                9.0,
            );
            k.working_set = software_working_set(work, 1);
            let mut cycles = kernel_cycles(&k, &cpu, &mem);
            if !work.score_only {
                cycles += kernel_cycles(&traceback_kernel(work.traceback_steps), &cpu, &mem);
                cycles += recompute_cells(work, 32) * 2.2 / 32.0;
            }
            cpu_only(cycles)
        }
        EngineKind::Smx1d => {
            let columns = work.cells as f64 / vl;
            let protein = work.config == AlignmentConfig::Protein;
            let mut k = LoopKernel::compute_only(
                "smx1d-columns",
                columns,
                vec![
                    (UopClass::Smx, 2.0),
                    (UopClass::IntAlu, 3.0),
                    (UopClass::Load, 0.5),
                    (UopClass::Store, if work.score_only { 0.1 } else { 1.0 }),
                    (UopClass::Csr, 0.1),
                    (UopClass::Branch, 1.0),
                ],
                // smx.h feeds the next column: the chain is the SMX unit
                // latency plus operand composition; the protein unit adds
                // the submat SRAM read to the chain.
                if protein { 5.4 } else { 2.2 },
            );
            k.mispredicts = 0.01;
            k.working_set = smx1d_working_set(work, ew.bits());
            k.streamed_bytes = if work.score_only { 0.5 } else { vl * f64::from(ew.bits()) / 8.0 };
            let mut cycles = kernel_cycles(&k, &cpu, &mem);
            if !work.score_only {
                cycles += kernel_cycles(&traceback_kernel(work.traceback_steps), &cpu, &mem);
            }
            cpu_only(cycles)
        }
        EngineKind::Smx2d | EngineKind::Smx => {
            let shapes: Vec<BlockShape> = work
                .blocks
                .iter()
                .map(|&(r, c)| BlockShape::from_dims(r, c, ew, !work.score_only))
                .collect();
            let sim = CoprocSim::new(CoprocTimingConfig::for_ew(ew, workers));
            let coproc = sim.simulate(&shapes);

            // Core-side work: packing, then score reduction or traceback
            // with tile recomputation.
            let pack = LoopKernel::compute_only(
                "smx-pack",
                work.pack_chars as f64 / 8.0,
                vec![
                    (UopClass::Smx, 1.0),
                    (UopClass::Load, 1.0),
                    (UopClass::Store, 1.0),
                    (UopClass::IntAlu, 1.0),
                ],
                0.0,
            );
            let mut cpu_busy = kernel_cycles(&pack, &cpu, &mem);
            if work.score_only {
                // Border reductions per block (smx.redsum driven).
                let rows_total: f64 = work.blocks.iter().map(|&(r, _)| r as f64).sum();
                cpu_busy += rows_total / vl * 1.5 + 20.0 * work.blocks.len() as f64;
            } else {
                cpu_busy += kernel_cycles(&traceback_kernel(work.traceback_steps), &cpu, &mem);
                let cells = recompute_cells(work, ew.vl());
                cpu_busy += if engine == EngineKind::Smx {
                    // Tile recomputation through SMX-1D (2.2 cycles/column).
                    cells * 2.2 / vl
                } else {
                    // Software recomputation on the core.
                    cells * 4.0
                };
            }
            let makespan = (coproc.cycles as f64).max(cpu_busy) + 100.0;
            TimingReport {
                cycles: makespan,
                cpu_busy,
                coproc_busy: coproc.tiles as f64,
                engine_utilization: coproc.tiles as f64 / makespan,
                core_busy_frac: cpu_busy / makespan,
            }
        }
        EngineKind::Gact => {
            // A standalone DSA computes each window, including its
            // traceback, in about 2W cycles (systolic fill + drain).
            let cycles: f64 = work.blocks.iter().map(|&(r, c)| 2.0 * r.max(c) as f64 + 50.0).sum();
            TimingReport {
                cycles: cycles.max(1.0),
                cpu_busy: 0.0,
                coproc_busy: cycles,
                engine_utilization: 1.0,
                core_busy_frac: 0.0,
            }
        }
    }
}

/// DP cells recomputed along the traceback path at tile size `vl`.
fn recompute_cells(work: &BatchWork, vl: usize) -> f64 {
    if work.traceback_steps == 0 {
        return 0.0;
    }
    let tiles = (work.traceback_steps as f64 / vl as f64) * 1.4 + work.blocks.len() as f64;
    tiles * (vl * vl) as f64
}

fn software_working_set(work: &BatchWork, bytes_per_cell: u64) -> u64 {
    if work.score_only {
        // A couple of rows of 16-bit lanes.
        (work.max_block_cells as f64).sqrt() as u64 * 8
    } else {
        work.max_block_cells * bytes_per_cell
    }
}

fn smx1d_working_set(work: &BatchWork, ew_bits: u8) -> u64 {
    if work.score_only {
        (work.max_block_cells as f64).sqrt() as u64 * u64::from(ew_bits) / 8 * 4
    } else {
        work.max_block_cells * u64::from(ew_bits) / 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(config: AlignmentConfig, n: usize, score_only: bool) -> BatchWork {
        let mut o = AlgoOutcome::new();
        o.cells_computed = (n * n) as u64;
        o.blocks.push((n, n));
        o.traceback_steps = if score_only { 0 } else { 2 * n as u64 };
        o.pack_chars = 2 * n as u64;
        BatchWork::from_outcomes(config, score_only, &[o])
    }

    #[test]
    fn simd_baseline_near_paper_gcups() {
        // KSW2 at 1 GHz: ~0.6 GCUPS for match/mismatch configs.
        let w = work(AlignmentConfig::DnaEdit, 1000, true);
        let t = estimate(EngineKind::Simd, &w, 4);
        let g = t.gcups(w.cells);
        assert!((0.3..1.2).contains(&g), "simd gcups {g}");
    }

    #[test]
    fn protein_simd_much_slower() {
        let dna = work(AlignmentConfig::DnaEdit, 1000, true);
        let prot = work(AlignmentConfig::Protein, 1000, true);
        let g_dna = estimate(EngineKind::Simd, &dna, 4).gcups(dna.cells);
        let g_prot = estimate(EngineKind::Simd, &prot, 4).gcups(prot.cells);
        assert!(g_prot < g_dna / 3.0, "{g_prot} vs {g_dna}");
    }

    #[test]
    fn smx1d_speedup_ordering_matches_paper() {
        // Paper §8 score-only speedups: DNA-edit ~23x > protein ~16x >
        // DNA-gap ~11x > ASCII ~6x.
        let mut ratios = Vec::new();
        for cfg in AlignmentConfig::ALL {
            let w = work(cfg, 1000, true);
            let simd = estimate(EngineKind::Simd, &w, 4).cycles;
            let smx1 = estimate(EngineKind::Smx1d, &w, 4).cycles;
            ratios.push((cfg, simd / smx1));
        }
        let get = |c: AlignmentConfig| ratios.iter().find(|(k, _)| *k == c).unwrap().1;
        assert!(get(AlignmentConfig::DnaEdit) > get(AlignmentConfig::DnaGap));
        assert!(get(AlignmentConfig::DnaGap) > get(AlignmentConfig::Ascii));
        assert!(get(AlignmentConfig::Protein) > get(AlignmentConfig::Ascii));
        assert!(get(AlignmentConfig::DnaEdit) > 10.0);
        assert!(get(AlignmentConfig::Ascii) > 3.0);
    }

    #[test]
    fn smx_dominates_for_large_blocks() {
        let w = work(AlignmentConfig::DnaEdit, 4000, true);
        let simd = estimate(EngineKind::Simd, &w, 4).cycles;
        let smx = estimate(EngineKind::Smx, &w, 4).cycles;
        assert!(simd / smx > 200.0, "speedup {}", simd / smx);
    }

    #[test]
    fn smx_beats_smx2d_on_full_alignment() {
        // The SMX-1D traceback recompute outruns the software one.
        let w = work(AlignmentConfig::DnaEdit, 2000, false);
        let smx2d = estimate(EngineKind::Smx2d, &w, 4).cycles;
        let smx = estimate(EngineKind::Smx, &w, 4).cycles;
        assert!(smx <= smx2d, "{smx} vs {smx2d}");
    }

    #[test]
    fn dpx_is_marginal_over_simd() {
        let w = work(AlignmentConfig::DnaGap, 1000, true);
        let simd = estimate(EngineKind::Simd, &w, 4).cycles;
        let dpx = estimate(EngineKind::Dpx, &w, 4).cycles;
        let ratio = simd / dpx;
        assert!((1.0..1.2).contains(&ratio), "dpx ratio {ratio}");
    }

    #[test]
    fn gmx_between_simd_and_smx() {
        let w = work(AlignmentConfig::DnaEdit, 2000, true);
        let simd = estimate(EngineKind::Simd, &w, 4).cycles;
        let gmx = estimate(EngineKind::Gmx, &w, 4).cycles;
        let smx = estimate(EngineKind::Smx, &w, 4).cycles;
        assert!(gmx < simd);
        assert!(smx < gmx);
    }

    #[test]
    fn software_engine_is_slowest() {
        let w = work(AlignmentConfig::DnaEdit, 1000, true);
        let sw = estimate(EngineKind::Software, &w, 4).cycles;
        let simd = estimate(EngineKind::Simd, &w, 4).cycles;
        assert!(sw > simd, "{sw} vs {simd}");
    }

    #[test]
    fn gact_scales_with_window_sides() {
        let mut o1 = AlgoOutcome::new();
        o1.blocks.push((320, 320));
        let mut o2 = AlgoOutcome::new();
        o2.blocks.extend(std::iter::repeat_n((320, 320), 10));
        let w1 = BatchWork::from_outcomes(AlignmentConfig::DnaEdit, true, &[o1]);
        let w2 = BatchWork::from_outcomes(AlignmentConfig::DnaEdit, true, &[o2]);
        let c1 = estimate(EngineKind::Gact, &w1, 4).cycles;
        let c2 = estimate(EngineKind::Gact, &w2, 4).cycles;
        assert!((c2 / c1 - 10.0).abs() < 0.5, "{c1} {c2}");
    }

    #[test]
    fn utilization_reported_for_coproc_engines() {
        let outcomes: Vec<AlgoOutcome> = (0..8)
            .map(|_| {
                let mut o = AlgoOutcome::new();
                o.cells_computed = 1_000_000;
                o.blocks.push((1000, 1000));
                o.pack_chars = 2000;
                o
            })
            .collect();
        let w = BatchWork::from_outcomes(AlignmentConfig::DnaEdit, true, &outcomes);
        let t = estimate(EngineKind::Smx, &w, 4);
        assert!(t.engine_utilization > 0.5, "{}", t.engine_utilization);
        assert!(t.core_busy_frac < 0.5);
    }
}
