//! Hirschberg's linear-memory divide-and-conquer alignment (paper §2.3,
//! §9). The query is split in half; a forward score row over the top half
//! and a backward score row over the bottom half meet to find the optimal
//! crossing column; both halves recurse. Memory is `O(m + n)` at the cost
//! of computing roughly `2·m·n` DP-elements.

use crate::metrics::AlgoOutcome;
use smx_align_core::{dp, Alignment, Cigar, Op, ScoringScheme};

/// Sub-problem size at which the recursion switches to a dense solve.
pub const BASE_CELLS: usize = 64;

/// Runs Hirschberg's algorithm, producing a guaranteed-optimal alignment.
#[must_use]
pub fn hirschberg_align(query: &[u8], reference: &[u8], scheme: &ScoringScheme) -> AlgoOutcome {
    let mut out = AlgoOutcome::new();
    let mut cigar = Cigar::new();
    recurse(query, reference, scheme, &mut out, &mut cigar);
    out.pack_chars = (query.len() + reference.len()) as u64;
    out.cells_stored = (query.len() + reference.len() + 2) as u64;
    out.traceback_steps = cigar.len() as u64;
    let score =
        cigar.score(query, reference, scheme).expect("hirschberg cigar consumes both sequences");
    out.score = Some(score);
    out.alignment = Some(Alignment { score, cigar });
    out
}

fn recurse(
    query: &[u8],
    reference: &[u8],
    scheme: &ScoringScheme,
    out: &mut AlgoOutcome,
    cigar: &mut Cigar,
) {
    let (m, n) = (query.len(), reference.len());
    if m == 0 {
        cigar.push_run(Op::Delete, n as u32);
        return;
    }
    if n == 0 {
        cigar.push_run(Op::Insert, m as u32);
        return;
    }
    if m <= BASE_CELLS || n <= BASE_CELLS {
        let aln = dp::align_codes(query, reference, scheme);
        out.cells_computed += (m * n) as u64;
        out.blocks.push((m, n));
        cigar.extend_from(&aln.cigar);
        return;
    }
    let mid = m / 2;
    // Forward scores of the top half against the whole reference.
    let fwd = dp::last_row(&query[..mid], reference, scheme);
    // Backward scores of the bottom half against the reversed reference.
    let q_rev: Vec<u8> = query[mid..].iter().rev().copied().collect();
    let r_rev: Vec<u8> = reference.iter().rev().copied().collect();
    let bwd = dp::last_row(&q_rev, &r_rev, scheme);
    out.cells_computed += (mid * n) as u64 + ((m - mid) * n) as u64;
    out.blocks.push((mid, n));
    out.blocks.push((m - mid, n));

    // Optimal crossing column: maximize fwd[j] + bwd[n - j].
    let split = (0..=n).max_by_key(|&j| fwd[j] + bwd[n - j]).expect("non-empty range");

    recurse(&query[..mid], &reference[..split], scheme, out, cigar);
    recurse(&query[mid..], &reference[split..], scheme, out, cigar);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use smx_align_core::ScoringScheme;

    fn check(q: &[u8], r: &[u8], scheme: &ScoringScheme) {
        let out = hirschberg_align(q, r, scheme);
        let golden = dp::score_only(q, r, scheme);
        assert_eq!(out.score, Some(golden));
        out.alignment.as_ref().unwrap().verify(q, r, scheme).unwrap();
    }

    #[test]
    fn matches_golden_small() {
        let q: Vec<u8> = (0..10).map(|i| i % 4).collect();
        let r: Vec<u8> = (0..12).map(|i| (i * 3) % 4).collect();
        check(&q, &r, &ScoringScheme::edit());
    }

    #[test]
    fn matches_golden_above_base() {
        let q: Vec<u8> = (0..500u32).map(|i| ((i * 7 + (i >> 4)) % 4) as u8).collect();
        let r: Vec<u8> = (0..430u32).map(|i| ((i * 5) % 4) as u8).collect();
        check(&q, &r, &ScoringScheme::linear(2, -4, -4).unwrap());
    }

    #[test]
    fn work_is_roughly_double_and_memory_linear() {
        let q = vec![1u8; 512];
        let r = vec![1u8; 512];
        let out = hirschberg_align(&q, &r, &ScoringScheme::edit());
        let mn = 512u64 * 512;
        assert!(out.cells_computed > mn, "computed {}", out.cells_computed);
        assert!(out.cells_computed < 3 * mn, "computed {}", out.cells_computed);
        assert!(out.cells_stored < 2048);
        assert!(out.blocks.len() > 2);
    }

    #[test]
    fn empty_sides_emit_gap_runs() {
        let out = hirschberg_align(&[0, 1], &[], &ScoringScheme::edit());
        assert_eq!(out.alignment.unwrap().cigar.to_string(), "2I");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn random_optimality(
            q in proptest::collection::vec(0u8..4, 1..200),
            r in proptest::collection::vec(0u8..4, 1..200),
        ) {
            let scheme = ScoringScheme::linear(1, -3, -2).unwrap();
            let out = hirschberg_align(&q, &r, &scheme);
            prop_assert_eq!(out.score, Some(dp::score_only(&q, &r, &scheme)));
            out.alignment.unwrap().verify(&q, &r, &scheme).unwrap();
        }
    }
}
