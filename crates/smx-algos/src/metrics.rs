//! The uniform algorithm-outcome type and recall accounting (Fig. 2,
//! Fig. 14).

use smx_align_core::Alignment;

/// What one algorithm run produced, functionally and as a work profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlgoOutcome {
    /// Alignment score, if the algorithm completed (X-drop may terminate
    /// without one).
    pub score: Option<i32>,
    /// Full alignment when requested and available.
    pub alignment: Option<Alignment>,
    /// DP-elements computed.
    pub cells_computed: u64,
    /// DP-elements simultaneously resident (algorithm-level, software
    /// semantics — what Fig. 2's "stored" axis reports).
    pub cells_stored: u64,
    /// DP-blocks the algorithm would offload to SMX-2D, as `(rows, cols)`.
    pub blocks: Vec<(usize, usize)>,
    /// Traceback path length (0 for score-only runs).
    pub traceback_steps: u64,
    /// Characters packed before offload (query + reference).
    pub pack_chars: u64,
    /// Whether an X-drop style termination fired.
    pub dropped: bool,
}

impl AlgoOutcome {
    /// An empty outcome (used as a builder seed).
    #[must_use]
    pub fn new() -> AlgoOutcome {
        AlgoOutcome {
            score: None,
            alignment: None,
            cells_computed: 0,
            cells_stored: 0,
            blocks: Vec::new(),
            traceback_steps: 0,
            pack_chars: 0,
            dropped: false,
        }
    }
}

impl Default for AlgoOutcome {
    fn default() -> Self {
        AlgoOutcome::new()
    }
}

/// Fraction of outcomes whose score equals the known optimal score
/// (the paper's recall metric: correctly aligned sequences / dataset).
#[must_use]
pub fn recall(outcomes: &[AlgoOutcome], optimal: &[i32]) -> f64 {
    assert_eq!(outcomes.len(), optimal.len(), "recall needs one optimum per outcome");
    if outcomes.is_empty() {
        return 0.0;
    }
    let correct = outcomes.iter().zip(optimal).filter(|(o, &opt)| o.score == Some(opt)).count();
    correct as f64 / outcomes.len() as f64
}

/// Percentage of the full DP-matrix the algorithm computed / stored
/// (Fig. 2 axes), given the pair dimensions.
#[must_use]
pub fn matrix_fractions(outcome: &AlgoOutcome, m: usize, n: usize) -> (f64, f64) {
    let total = (m as f64) * (n as f64);
    if total == 0.0 {
        return (0.0, 0.0);
    }
    (outcome.cells_computed as f64 / total, outcome.cells_stored as f64 / total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_score(s: Option<i32>) -> AlgoOutcome {
        AlgoOutcome { score: s, ..AlgoOutcome::new() }
    }

    #[test]
    fn recall_counts_exact_scores() {
        let outcomes = vec![with_score(Some(-3)), with_score(Some(-5)), with_score(None)];
        let r = recall(&outcomes, &[-3, -4, -9]);
        assert!((r - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn recall_empty_is_zero() {
        assert_eq!(recall(&[], &[]), 0.0);
    }

    #[test]
    fn fractions() {
        let mut o = AlgoOutcome::new();
        o.cells_computed = 50;
        o.cells_stored = 10;
        let (c, s) = matrix_fractions(&o, 10, 10);
        assert!((c - 0.5).abs() < 1e-12);
        assert!((s - 0.1).abs() < 1e-12);
    }
}
