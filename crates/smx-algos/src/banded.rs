//! The banded heuristic (paper §2.3): compute only a diagonal band of the
//! DP-matrix, with optional X-drop termination (§9's "banded Xdrop", the
//! BLAST-style algorithm).

use crate::metrics::AlgoOutcome;
use smx_align_core::{Cigar, Op, ScoringScheme};

/// Sentinel for out-of-band cells.
const NEG: i32 = i32::MIN / 4;

/// Reference-column strip width used when decomposing the band into
/// DP-blocks for the coprocessor ("columns sized by the supertile's
/// width", §9).
pub const STRIP_COLS: usize = 256;

/// Runs the banded algorithm with half-band `band` (cells with
/// `|j − center(i)| ≤ band` are computed, where the band center follows
/// the main diagonal scaled to the sequence lengths).
///
/// `xdrop` of `Some(x)` terminates the computation once the best score in
/// a row falls more than `x` below the best score seen anywhere
/// (`dropped` is set and no score is returned).
#[must_use]
pub fn banded_align(
    query: &[u8],
    reference: &[u8],
    scheme: &ScoringScheme,
    band: usize,
    xdrop: Option<i32>,
    want_alignment: bool,
) -> AlgoOutcome {
    let (m, n) = (query.len(), reference.len());
    let mut out = AlgoOutcome::new();
    out.pack_chars = (m + n) as u64;
    if m == 0 || n == 0 {
        out.score = Some(m as i32 * scheme.gap_insert() + n as i32 * scheme.gap_delete());
        if want_alignment {
            let mut cigar = Cigar::new();
            cigar.push_run(Op::Insert, m as u32);
            cigar.push_run(Op::Delete, n as u32);
            out.score =
                Some(cigar.score(query, reference, scheme).expect("gap-only cigar is consistent"));
            out.traceback_steps = cigar.len() as u64;
            out.alignment = Some(smx_align_core::Alignment { score: out.score.unwrap(), cigar });
        }
        return out;
    }
    let (gi, gd) = (scheme.gap_insert(), scheme.gap_delete());
    let center = |i: usize| i * n / m;
    let lo = |i: usize| center(i).saturating_sub(band);
    let hi = |i: usize| (center(i) + band).min(n);

    // rows[i] holds cells lo(i)..=hi(i).
    let mut rows: Vec<Vec<i32>> = Vec::with_capacity(m + 1);
    let mut cells: u64 = 0;
    let row0: Vec<i32> = (lo(0)..=hi(0)).map(|j| j as i32 * gd).collect();
    cells += row0.len() as u64;
    rows.push(row0);
    let mut best = 0i32;
    let mut dropped = false;
    let mut last_row_done = 0usize;

    for i in 1..=m {
        let (l, h) = (lo(i), hi(i));
        let (pl, ph) = (lo(i - 1), hi(i - 1));
        let prev = &rows[i - 1];
        let get_prev = |j: usize| -> i32 {
            if (pl..=ph).contains(&j) {
                prev[j - pl]
            } else {
                NEG
            }
        };
        let mut row = vec![NEG; h - l + 1];
        let mut row_best = NEG;
        for j in l..=h {
            let v = if j == 0 {
                i as i32 * gi
            } else {
                let diag = get_prev(j - 1) + scheme.score(query[i - 1], reference[j - 1]);
                let up = get_prev(j) + gi;
                let left = if j > l { row[j - 1 - l] + gd } else { NEG };
                diag.max(up).max(left)
            };
            row[j - l] = v;
            row_best = row_best.max(v);
        }
        cells += row.len() as u64;
        rows.push(row);
        last_row_done = i;
        best = best.max(row_best);
        if let Some(x) = xdrop {
            if row_best < best - x {
                dropped = true;
                break;
            }
        }
    }

    out.cells_computed = cells;
    out.cells_stored = if want_alignment { cells } else { (2 * (2 * band + 1)) as u64 };
    out.dropped = dropped;
    out.blocks = strip_blocks(last_row_done, n.min(hi(last_row_done)), band, STRIP_COLS);

    if dropped {
        return out;
    }
    // The final cell must be in band (it is: hi(m) = n, center(m) = n).
    let final_score = rows[m][n - lo(m)];
    if final_score <= NEG / 2 {
        out.dropped = true;
        return out;
    }
    out.score = Some(final_score);

    if want_alignment {
        let mut cigar = Cigar::new();
        let (mut i, mut j) = (m, n);
        let at = |i: usize, j: usize, rows: &Vec<Vec<i32>>| -> i32 {
            if (lo(i)..=hi(i)).contains(&j) {
                rows[i][j - lo(i)]
            } else {
                NEG
            }
        };
        while i > 0 || j > 0 {
            let here = at(i, j, &rows);
            if i > 0
                && j > 0
                && at(i - 1, j - 1, &rows) > NEG / 2
                && here == at(i - 1, j - 1, &rows) + scheme.score(query[i - 1], reference[j - 1])
            {
                cigar.push(if query[i - 1] == reference[j - 1] { Op::Match } else { Op::Mismatch });
                i -= 1;
                j -= 1;
            } else if i > 0 && at(i - 1, j, &rows) > NEG / 2 && here == at(i - 1, j, &rows) + gi {
                cigar.push(Op::Insert);
                i -= 1;
            } else {
                debug_assert!(j > 0, "banded traceback stuck at ({i}, {j})");
                cigar.push(Op::Delete);
                j -= 1;
            }
        }
        cigar.reverse();
        out.traceback_steps = cigar.len() as u64;
        out.alignment = Some(smx_align_core::Alignment { score: final_score, cigar });
    }
    out
}

/// Decomposes a band into column-strip DP-blocks for the coprocessor:
/// each strip spans `strip` reference columns and the band rows that
/// intersect it.
#[must_use]
pub fn strip_blocks(m: usize, n: usize, band: usize, strip: usize) -> Vec<(usize, usize)> {
    if m == 0 || n == 0 {
        return Vec::new();
    }
    let mut blocks = Vec::new();
    let mut j0 = 0usize;
    while j0 < n {
        let cols = strip.min(n - j0);
        // Rows whose band interval intersects [j0, j0+cols).
        let i_lo = ((j0.saturating_sub(band)) * m) / n;
        let i_hi = (((j0 + cols + band) * m) / n + 1).min(m);
        if i_hi > i_lo {
            blocks.push((i_hi - i_lo, cols));
        }
        j0 += cols;
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use smx_align_core::dp;

    fn dna(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % 4) as u8
            })
            .collect()
    }

    #[test]
    fn wide_band_matches_golden() {
        let q = dna(120, 7);
        let r = dna(110, 5);
        let scheme = ScoringScheme::edit();
        let out = banded_align(&q, &r, &scheme, 120, None, true);
        assert_eq!(out.score, Some(dp::score_only(&q, &r, &scheme)));
        out.alignment.as_ref().unwrap().verify(&q, &r, &scheme).unwrap();
    }

    #[test]
    fn similar_sequences_need_narrow_band() {
        // A handful of substitutions keeps the optimum on the diagonal.
        let r = dna(400, 7);
        let mut q = r.clone();
        q[50] ^= 1;
        q[200] ^= 2;
        let scheme = ScoringScheme::edit();
        let out = banded_align(&q, &r, &scheme, 8, None, true);
        assert_eq!(out.score, Some(dp::score_only(&q, &r, &scheme)));
        // Far fewer cells than the full matrix.
        assert!(out.cells_computed < 400 * 20);
    }

    #[test]
    fn narrow_band_may_miss_optimum() {
        // A large indel pushes the optimal path outside a tiny band.
        let r = dna(200, 7);
        let mut q = r[..40].to_vec();
        q.extend_from_slice(&r[120..]); // 80-base deletion
        let scheme = ScoringScheme::edit();
        let out = banded_align(&q, &r, &scheme, 4, None, false);
        let golden = dp::score_only(&q, &r, &scheme);
        assert!(out.score.unwrap_or(i32::MIN) < golden, "band should miss the optimum");
    }

    #[test]
    fn xdrop_terminates_on_dissimilar_sequences() {
        let q = dna(600, 7);
        let r = dna(600, 99991); // unrelated sequence
        let scheme = ScoringScheme::linear(2, -4, -4).unwrap();
        let out = banded_align(&q, &r, &scheme, 32, Some(50), false);
        assert!(out.dropped);
        assert_eq!(out.score, None);
        // Terminated early: computed fewer cells than the full band.
        let full_band = banded_align(&q, &r, &scheme, 32, None, false);
        assert!(out.cells_computed < full_band.cells_computed);
    }

    #[test]
    fn xdrop_passes_similar_sequences() {
        let r = dna(500, 7);
        let mut q = r.clone();
        q[100] ^= 1;
        let scheme = ScoringScheme::linear(2, -4, -4).unwrap();
        let out = banded_align(&q, &r, &scheme, 16, Some(100), true);
        assert!(!out.dropped);
        assert_eq!(out.score, Some(dp::score_only(&q, &r, &scheme)));
    }

    #[test]
    fn strip_blocks_cover_band() {
        let blocks = strip_blocks(1000, 1000, 50, 256);
        assert_eq!(blocks.len(), 4);
        for &(rows, cols) in &blocks {
            assert!(cols <= 256);
            assert!(rows <= 1000);
            assert!(rows >= 256); // strip + band coverage
        }
    }

    #[test]
    fn empty_inputs() {
        let scheme = ScoringScheme::edit();
        let out = banded_align(&[], &[0, 1], &scheme, 4, None, true);
        assert_eq!(out.score, Some(-2));
        assert_eq!(out.alignment.unwrap().cigar.to_string(), "2D");
    }
}
