//! Banded X-drop alignment (paper §9, "Xdrop-SMX"): the banded heuristic
//! with BLAST-style score-drop termination, plus the band/threshold
//! presets used by the harnesses.

use crate::banded::banded_align;
use crate::metrics::AlgoOutcome;
use smx_align_core::ScoringScheme;

/// Default X-drop threshold as a fraction of the attainable match score
/// (Fig. 14 uses an X-drop of 8%).
pub const DEFAULT_XDROP_FRACTION: f64 = 0.08;

/// Runs banded X-drop with an absolute threshold `x`.
#[must_use]
pub fn xdrop_align(
    query: &[u8],
    reference: &[u8],
    scheme: &ScoringScheme,
    band: usize,
    x: i32,
    want_alignment: bool,
) -> AlgoOutcome {
    banded_align(query, reference, scheme, band, Some(x), want_alignment)
}

/// Runs banded X-drop with the Fig. 14 relative threshold: `x` is
/// `fraction` of the perfect-match score of the query.
#[must_use]
pub fn xdrop_align_relative(
    query: &[u8],
    reference: &[u8],
    scheme: &ScoringScheme,
    band: usize,
    fraction: f64,
    want_alignment: bool,
) -> AlgoOutcome {
    let per_match = scheme.s_max().max(1);
    let x = ((query.len() as f64) * f64::from(per_match) * fraction).ceil() as i32;
    xdrop_align(query, reference, scheme, band, x.max(1), want_alignment)
}

/// A seed extension: how far an X-drop extension reached and what it
/// scored — the BLAST/Minimap2 semantics where the alignment *ends where
/// the score peaked*, rather than being forced to the corner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extension {
    /// Best score found.
    pub score: i32,
    /// Query characters consumed at the best-scoring point.
    pub query_end: usize,
    /// Reference characters consumed at the best-scoring point.
    pub reference_end: usize,
    /// DP cells computed before the drop fired (or the ends were reached).
    pub cells: u64,
}

/// Extends an alignment rightward from `(0, 0)` under the X-drop rule:
/// antidiagonals are computed within a band until their best score falls
/// more than `x` below the global best, then the best prefix is reported.
///
/// This is the extension primitive seed-and-extend pipelines call per
/// seed (paper §2.3's drop strategies; the use case behind Fig. 14's (X)
/// column).
#[must_use]
pub fn extend_xdrop(
    query: &[u8],
    reference: &[u8],
    scheme: &ScoringScheme,
    band: usize,
    x: i32,
) -> Extension {
    let (m, n) = (query.len(), reference.len());
    let mut best = Extension { score: 0, query_end: 0, reference_end: 0, cells: 1 };
    if m == 0 || n == 0 || band == 0 {
        return best;
    }
    let (gi, gd) = (scheme.gap_insert(), scheme.gap_delete());
    const NEG: i32 = i32::MIN / 4;
    // Antidiagonal DP around the main diagonal, with X-drop.
    let mut prev2: Vec<i32> = vec![0]; // antidiagonal a-2, offsets from lo2
    let mut lo2 = 0i64;
    // Antidiagonal a = 1: cells (0, 1) and (1, 0).
    let mut prev: Vec<i32> = vec![gd, gi];
    let mut lo1 = 0i64;
    for a in 2..=(m + n) as i64 {
        let i_min = (a - n as i64).max(0).max(a / 2 - band as i64);
        let i_max = a.min(m as i64).min(a / 2 + band as i64);
        if i_min > i_max {
            break;
        }
        let mut row = vec![NEG; (i_max - i_min + 1) as usize];
        let get = |v: &Vec<i32>, lo: i64, i: i64| -> i32 {
            let idx = i - lo;
            if idx >= 0 && (idx as usize) < v.len() {
                v[idx as usize]
            } else {
                NEG
            }
        };
        let mut diag_best = NEG;
        for i in i_min..=i_max {
            let j = a - i;
            let v = if i == 0 {
                (j as i32) * gd
            } else if j == 0 {
                (i as i32) * gi
            } else {
                let s = scheme.score(query[(i - 1) as usize], reference[(j - 1) as usize]);
                get(&prev2, lo2, i - 1)
                    .saturating_add(s)
                    .max(get(&prev, lo1, i - 1).saturating_add(gi))
                    .max(get(&prev, lo1, i).saturating_add(gd))
                    .max(NEG)
            };
            row[(i - i_min) as usize] = v;
            best.cells += 1;
            if v > diag_best {
                diag_best = v;
            }
            if v > best.score {
                best = Extension {
                    score: v,
                    query_end: i as usize,
                    reference_end: j as usize,
                    cells: best.cells,
                };
            }
        }
        if diag_best < best.score - x {
            break;
        }
        prev2 = prev;
        lo2 = lo1;
        prev = row;
        lo1 = i_min;
    }
    best
}

/// A band wide enough for an expected error rate: `2 × rate × len`
/// diagonals of slack plus a small constant.
#[must_use]
pub fn band_for_error_rate(len: usize, rate: f64) -> usize {
    ((len as f64 * rate * 2.0).ceil() as usize + 16).min(len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smx_align_core::dp;

    #[test]
    fn relative_threshold_scales_with_length() {
        let scheme = ScoringScheme::linear(2, -4, -4).unwrap();
        let q = vec![0u8; 1000];
        let out = xdrop_align_relative(&q, &q, &scheme, 16, 0.08, false);
        assert!(!out.dropped);
        assert_eq!(out.score, Some(dp::score_only(&q, &q, &scheme)));
    }

    #[test]
    fn extension_stops_at_divergence_point() {
        // Sequences agree for 200 bases then diverge completely: the
        // extension must peak near (200, 200) and stop early.
        let mut x = 7u64;
        let mut gen = |len: usize, card: u64| -> Vec<u8> {
            (0..len)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    (x % card) as u8
                })
                .collect()
        };
        let common = gen(200, 4);
        let mut q = common.clone();
        q.extend(gen(300, 2)); // diverging tails drawn from
        let mut r = common;
        r.extend(gen(300, 2).iter().map(|c| c + 2)); // disjoint alphabets
        let scheme = ScoringScheme::linear(2, -4, -4).unwrap();
        let ext = extend_xdrop(&q, &r, &scheme, 32, 60);
        assert!((190..=210).contains(&ext.query_end), "q end {}", ext.query_end);
        assert!((190..=210).contains(&ext.reference_end));
        assert_eq!(ext.score, 2 * ext.query_end as i32);
        // Early termination: far fewer cells than the full band.
        assert!(ext.cells < (500 * 70) as u64, "cells {}", ext.cells);
    }

    #[test]
    fn extension_reaches_the_end_of_similar_pairs() {
        let q = vec![1u8; 300];
        let scheme = ScoringScheme::linear(2, -4, -4).unwrap();
        let ext = extend_xdrop(&q, &q, &scheme, 16, 40);
        assert_eq!(ext.query_end, 300);
        assert_eq!(ext.reference_end, 300);
        assert_eq!(ext.score, 600);
    }

    #[test]
    fn extension_with_scattered_errors_keeps_going() {
        let mut q = vec![1u8; 400];
        q[50] = 2;
        q[200] = 0;
        let r = vec![1u8; 400];
        let scheme = ScoringScheme::linear(2, -4, -4).unwrap();
        let ext = extend_xdrop(&q, &r, &scheme, 16, 50);
        assert_eq!(ext.query_end, 400);
        assert_eq!(ext.score, 398 * 2 - 2 * 4);
    }

    #[test]
    fn degenerate_extension_inputs() {
        let scheme = ScoringScheme::edit();
        assert_eq!(extend_xdrop(&[], &[0], &scheme, 8, 10).score, 0);
        assert_eq!(extend_xdrop(&[0], &[0], &scheme, 0, 10).score, 0);
    }

    #[test]
    fn band_for_error_rate_bounds() {
        assert!(band_for_error_rate(10_000, 0.07) >= 1400);
        assert_eq!(band_for_error_rate(10, 1.0), 10);
    }
}
