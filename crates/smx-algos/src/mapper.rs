//! A miniature seed–chain–extend read mapper — the pipeline shape of
//! Minimap2, the paper's §9.3 end-to-end application. Seeding and
//! chaining are the irregular, pointer-chasing work the general-purpose
//! core keeps; the banded extension around the chained diagonal is the
//! regular DP-block work SMX accelerates.
//!
//! This is deliberately small (exact k-mer seeds, one best chain), but it
//! is a real mapper: it locates a read inside a reference it has never
//! seen aligned, then produces a base-level alignment of the placed
//! segment.

use crate::banded::banded_align;
use crate::metrics::AlgoOutcome;
use smx_align_core::{AlignError, ScoringScheme};
use std::collections::HashMap;

/// A k-mer index over a reference sequence.
#[derive(Debug, Clone)]
pub struct KmerIndex {
    k: usize,
    /// k-mer key → reference positions (capped per key to bound repeats).
    seeds: HashMap<u64, Vec<u32>>,
}

/// Maximum occurrences kept per k-mer (repeat masking).
const MAX_OCC: usize = 32;

impl KmerIndex {
    /// Builds an index with k-mers of length `k` (2-bit packed, so codes
    /// must be `< 4` and `k ≤ 31`).
    ///
    /// # Errors
    ///
    /// Returns [`AlignError::InvalidScoring`] for an unusable `k` and
    /// [`AlignError::InvalidCode`] for non-DNA codes.
    pub fn build(reference: &[u8], k: usize) -> Result<KmerIndex, AlignError> {
        if k == 0 || k > 31 {
            return Err(AlignError::InvalidScoring(format!("k = {k} out of range 1..=31")));
        }
        if let Some(&bad) = reference.iter().find(|&&c| c >= 4) {
            return Err(AlignError::InvalidCode { code: bad, alphabet: "dna2" });
        }
        let mut seeds: HashMap<u64, Vec<u32>> = HashMap::new();
        if reference.len() >= k {
            let mask = (1u64 << (2 * k)) - 1;
            let mut key = 0u64;
            for (i, &c) in reference.iter().enumerate() {
                key = ((key << 2) | u64::from(c)) & mask;
                if i + 1 >= k {
                    let pos = (i + 1 - k) as u32;
                    let entry = seeds.entry(key).or_default();
                    if entry.len() < MAX_OCC {
                        entry.push(pos);
                    }
                }
            }
        }
        Ok(KmerIndex { k, seeds })
    }

    /// The k-mer length.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of distinct k-mers indexed.
    #[must_use]
    pub fn distinct_kmers(&self) -> usize {
        self.seeds.len()
    }

    /// Exact seed matches of `query` against the index:
    /// `(query position, reference position)` pairs.
    #[must_use]
    pub fn seeds_of(&self, query: &[u8]) -> Vec<(u32, u32)> {
        let k = self.k;
        let mut out = Vec::new();
        if query.len() < k || query.iter().any(|&c| c >= 4) {
            return out;
        }
        let mask = (1u64 << (2 * k)) - 1;
        let mut key = 0u64;
        for (i, &c) in query.iter().enumerate() {
            key = ((key << 2) | u64::from(c)) & mask;
            if i + 1 >= k {
                if let Some(positions) = self.seeds.get(&key) {
                    let qpos = (i + 1 - k) as u32;
                    out.extend(positions.iter().map(|&rpos| (qpos, rpos)));
                }
            }
        }
        out
    }
}

/// A chained placement of the read on the reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chain {
    /// Seeds on the chain, ordered by query position.
    pub seeds: Vec<(u32, u32)>,
    /// Reference span implied by the chain (half-open, unclamped band).
    pub ref_range: std::ops::Range<usize>,
}

/// Chains seeds by diagonal clustering + longest co-linear run: the
/// irregular CPU-side task of the pipeline.
///
/// Returns `None` when no placement has at least `min_seeds` seeds.
#[must_use]
pub fn chain_seeds(seeds: &[(u32, u32)], min_seeds: usize, max_diag_spread: u32) -> Option<Chain> {
    if seeds.is_empty() {
        return None;
    }
    // Bucket by (coarse) diagonal, keep the best-populated bucket.
    let mut buckets: HashMap<i64, Vec<(u32, u32)>> = HashMap::new();
    for &(q, r) in seeds {
        let diag = i64::from(r) - i64::from(q);
        let coarse = diag.div_euclid(i64::from(max_diag_spread.max(1)));
        for key in [coarse - 1, coarse, coarse + 1] {
            buckets.entry(key).or_default();
        }
        buckets.get_mut(&coarse).expect("just inserted").push((q, r));
    }
    let (_, mut best) = buckets.into_iter().max_by_key(|(key, v)| (v.len(), -key))?;
    if best.len() < min_seeds {
        return None;
    }
    // Keep a co-linear subset: sort by query position, drop back-steps.
    best.sort_unstable();
    let mut chain: Vec<(u32, u32)> = Vec::with_capacity(best.len());
    for (q, r) in best {
        if chain.last().is_none_or(|&(_, pr)| r >= pr) {
            chain.push((q, r));
        }
    }
    if chain.len() < min_seeds {
        return None;
    }
    let first = chain[0];
    let last = chain[chain.len() - 1];
    let start = first.1 as usize;
    let end = last.1 as usize;
    Some(Chain { ref_range: start..end, seeds: chain })
}

/// A mapped read: placement plus base-level alignment of the segment.
#[derive(Debug, Clone)]
pub struct Mapping {
    /// Where the read landed on the reference (half-open).
    pub ref_range: std::ops::Range<usize>,
    /// The banded alignment of the read against that segment.
    pub outcome: AlgoOutcome,
    /// Seeds supporting the placement.
    pub seed_count: usize,
}

/// Maps one read: seed → chain → banded extend (the SMX-accelerated DP).
///
/// Returns `None` when the read cannot be placed.
///
/// # Errors
///
/// Propagates index errors (invalid codes).
pub fn map_read(
    index: &KmerIndex,
    reference: &[u8],
    read: &[u8],
    scheme: &ScoringScheme,
    band: usize,
) -> Result<Option<Mapping>, AlignError> {
    let seeds = index.seeds_of(read);
    let Some(chain) = chain_seeds(&seeds, 3, 64) else {
        return Ok(None);
    };
    // Expand the chained span to cover the whole read plus band slack.
    let (q0, r0) = chain.seeds[0];
    let lead = q0 as usize + band;
    let start = (r0 as usize).saturating_sub(lead);
    let (qk, rk) = *chain.seeds.last().expect("non-empty chain");
    let tail = read.len() - qk as usize + band;
    let end = (rk as usize + index.k() + tail).min(reference.len());
    if start >= end {
        return Ok(None);
    }
    let segment = &reference[start..end];
    // The flanks shift the true path up to `band` diagonals away from the
    // segment's scaled diagonal; widen the DP band to cover that offset.
    let dp_band = 2 * band + 16;
    let outcome = banded_align(read, segment, scheme, dp_band, None, true);
    Ok(Some(Mapping { ref_range: start..end, outcome, seed_count: chain.seeds.len() }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use smx_align_core::dp;

    fn dna(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % 4) as u8
            })
            .collect()
    }

    #[test]
    fn index_finds_exact_kmers() {
        let reference = dna(500, 3);
        let idx = KmerIndex::build(&reference, 15).unwrap();
        let read = reference[100..160].to_vec();
        let seeds = idx.seeds_of(&read);
        assert!(!seeds.is_empty());
        // The true placement (diagonal 100) must be among the seeds.
        assert!(seeds.iter().any(|&(q, r)| r == q + 100));
    }

    #[test]
    fn maps_a_clean_read() {
        let reference = dna(2000, 7);
        let read = reference[700..1000].to_vec();
        let idx = KmerIndex::build(&reference, 15).unwrap();
        let scheme = ScoringScheme::edit();
        let m = map_read(&idx, &reference, &read, &scheme, 32).unwrap().unwrap();
        assert!(m.ref_range.start <= 700 && m.ref_range.end >= 1000);
        // The banded alignment of the segment recovers a perfect match
        // for the core of the read.
        let aln = m.outcome.alignment.as_ref().unwrap();
        assert!(aln.cigar.stats().matches >= 300 - 1);
    }

    #[test]
    fn maps_a_noisy_read() {
        let reference = dna(3000, 9);
        let mut read = reference[1200..1700].to_vec();
        read[100] ^= 1;
        read.remove(250);
        read.insert(400, 2);
        let idx = KmerIndex::build(&reference, 15).unwrap();
        let scheme = ScoringScheme::edit();
        let m = map_read(&idx, &reference, &read, &scheme, 48).unwrap().unwrap();
        assert!(m.seed_count >= 3);
        // Score of the placed segment should be close to the edit cost of
        // the three introduced errors (flanks may add a few).
        let seg = &reference[m.ref_range.clone()];
        let golden = dp::score_only(&read, seg, &scheme);
        assert_eq!(m.outcome.score, Some(golden));
    }

    #[test]
    fn unrelated_read_fails_to_place() {
        let reference = dna(2000, 11);
        let read = dna(300, 99991);
        let idx = KmerIndex::build(&reference, 17).unwrap();
        let scheme = ScoringScheme::edit();
        assert!(map_read(&idx, &reference, &read, &scheme, 32).unwrap().is_none());
    }

    #[test]
    fn repeats_are_capped() {
        let reference = vec![0u8; 4096]; // poly-A: one k-mer everywhere
        let idx = KmerIndex::build(&reference, 15).unwrap();
        assert_eq!(idx.distinct_kmers(), 1);
        let seeds = idx.seeds_of(&[0u8; 64]);
        assert!(seeds.len() <= MAX_OCC * (64 - 15 + 1));
    }

    #[test]
    fn degenerate_inputs() {
        assert!(KmerIndex::build(&[0, 1, 2], 0).is_err());
        assert!(KmerIndex::build(&[0, 1, 9], 3).is_err());
        let idx = KmerIndex::build(&[0, 1, 2], 5).unwrap();
        assert_eq!(idx.distinct_kmers(), 0);
        assert!(idx.seeds_of(&[0, 1]).is_empty());
    }

    #[test]
    fn chain_rejects_sparse_matches() {
        assert!(chain_seeds(&[(0, 100)], 3, 64).is_none());
        assert!(chain_seeds(&[], 1, 64).is_none());
    }
}
