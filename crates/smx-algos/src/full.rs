//! Full-matrix alignment (the "Full" algorithm of Figs. 2, 11, 14).

use crate::metrics::AlgoOutcome;
use smx_align_core::{dp, ScoringScheme};

/// Cell-count threshold above which the functional alignment path is
/// produced by the linear-memory Hirschberg recursion instead of a dense
/// matrix (the reported *work profile* stays that of the full algorithm).
const DENSE_LIMIT: u64 = 16_000_000;

/// Runs the full-matrix algorithm.
///
/// With `want_alignment = false` only the score is produced (linear
/// memory); otherwise the full optimal path is returned.
#[must_use]
pub fn full_align(
    query: &[u8],
    reference: &[u8],
    scheme: &ScoringScheme,
    want_alignment: bool,
) -> AlgoOutcome {
    let (m, n) = (query.len(), reference.len());
    let cells = m as u64 * n as u64;
    let mut out = AlgoOutcome::new();
    out.cells_computed = cells;
    out.blocks.push((m, n));
    out.pack_chars = (m + n) as u64;
    if want_alignment {
        out.cells_stored = cells;
        let alignment = if cells <= DENSE_LIMIT {
            dp::align_codes(query, reference, scheme)
        } else {
            // Functionally equivalent optimal path via Hirschberg; the
            // full algorithm's work profile is reported regardless.
            crate::hirschberg::hirschberg_align(query, reference, scheme)
                .alignment
                .expect("hirschberg always yields an alignment")
        };
        out.traceback_steps = alignment.cigar.len() as u64;
        out.score = Some(alignment.score);
        out.alignment = Some(alignment);
    } else {
        out.cells_stored = (n + 1) as u64;
        out.score = Some(dp::score_only(query, reference, scheme));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use smx_align_core::ScoringScheme;

    #[test]
    fn score_only_matches_golden() {
        let q = [0u8, 1, 2, 3, 1];
        let r = [0u8, 1, 3, 3, 1];
        let s = ScoringScheme::edit();
        let out = full_align(&q, &r, &s, false);
        assert_eq!(out.score, Some(dp::score_only(&q, &r, &s)));
        assert!(out.alignment.is_none());
        assert_eq!(out.cells_computed, 25);
        assert_eq!(out.cells_stored, 6);
    }

    #[test]
    fn alignment_verifies() {
        let q = [0u8, 1, 2, 3, 1, 2, 0];
        let r = [0u8, 2, 3, 3, 1, 0];
        let s = ScoringScheme::linear(2, -4, -4).unwrap();
        let out = full_align(&q, &r, &s, true);
        let aln = out.alignment.unwrap();
        aln.verify(&q, &r, &s).unwrap();
        assert_eq!(out.traceback_steps, aln.cigar.len() as u64);
        assert_eq!(out.blocks, vec![(7, 6)]);
    }
}
