//! Adaptive banded DP (Suzuki–Kasahara style, paper reference [98]): a
//! fixed-width band over *antidiagonals* that re-centers itself each step
//! by comparing the scores at its two ends, following alignment paths
//! that drift away from the main diagonal (long indels) without paying
//! for a wide static band.
//!
//! On antidiagonal `a = i + j` the band covers query rows
//! `i ∈ [off_a, off_a + W)`. Advancing to `a + 1` the band either moves
//! *down* (`off` grows: the path is drifting toward insertions) or
//! *right* (`off` stays: toward deletions), decided by which band end
//! currently scores higher — the classic adaptive-band rule.

use crate::metrics::AlgoOutcome;
use smx_align_core::{Cigar, Op, ScoringScheme};

const NEG: i32 = i32::MIN / 4;

/// Runs the adaptive banded algorithm with a band of `width` cells per
/// antidiagonal.
///
/// The final cell `(m, n)` must fall inside the last band for a score to
/// be produced; otherwise the outcome is `dropped`.
#[must_use]
#[allow(clippy::needless_range_loop)] // band index mirrors the offset math
pub fn adaptive_banded_align(
    query: &[u8],
    reference: &[u8],
    scheme: &ScoringScheme,
    width: usize,
    want_alignment: bool,
) -> AlgoOutcome {
    let (m, n) = (query.len(), reference.len());
    let mut out = AlgoOutcome::new();
    out.pack_chars = (m + n) as u64;
    if m == 0 || n == 0 || width == 0 {
        out.dropped = true;
        return out;
    }
    let (gi, gd) = (scheme.gap_insert(), scheme.gap_delete());
    let diags = m + n + 1;
    // offsets[a] = first query row covered on antidiagonal a.
    let mut offsets: Vec<usize> = Vec::with_capacity(diags);
    let mut bands: Vec<Vec<i32>> = Vec::with_capacity(diags);
    let mut cells: u64 = 0;

    for a in 0..diags {
        let off = if a == 0 {
            0
        } else {
            let prev_off = offsets[a - 1];
            let prev = &bands[a - 1];
            // Ends of the previous band (clamped to valid cells).
            let i_lo = prev_off;
            let i_hi = prev_off + prev.len() - 1;
            let top = prev[0];
            let bottom = prev[prev.len() - 1];
            let mut off = if bottom > top && i_hi < m {
                prev_off + 1 // move down: follow insertions
            } else {
                prev_off // move right
            };
            let _ = i_lo;
            // Clamp so the band stays inside the matrix on diagonal a.
            off = off.max(a.saturating_sub(n)); // j = a - i <= n
            off.min(m.min(a))
        };
        // Valid i range on this antidiagonal: [max(0, a-n), min(a, m)].
        let i_min = a.saturating_sub(n);
        let i_max = a.min(m);
        let len = width.min(i_max.saturating_sub(off) + 1);
        let mut band = vec![NEG; len.max(1)];
        let get = |aa: usize, ii: usize, offsets: &Vec<usize>, bands: &Vec<Vec<i32>>| -> i32 {
            if aa >= bands.len() {
                return NEG;
            }
            let o = offsets[aa];
            let b = &bands[aa];
            if ii >= o && ii < o + b.len() {
                b[ii - o]
            } else {
                NEG
            }
        };
        for idx in 0..band.len() {
            let i = off + idx;
            if i < i_min || i > i_max {
                continue;
            }
            let j = a - i;
            let v = if i == 0 {
                j as i32 * gd
            } else if j == 0 {
                i as i32 * gi
            } else {
                let diag = if a >= 2 {
                    get(a - 2, i - 1, &offsets, &bands)
                        .saturating_add(scheme.score(query[i - 1], reference[j - 1]))
                } else {
                    NEG
                };
                let up = get(a - 1, i - 1, &offsets, &bands).saturating_add(gi); // (i-1, j)
                let left = get(a - 1, i, &offsets, &bands).saturating_add(gd); // (i, j-1)
                diag.max(up).max(left).max(NEG)
            };
            band[idx] = v;
        }
        cells += band.len() as u64;
        offsets.push(off);
        bands.push(band);
    }

    out.cells_computed = cells;
    out.cells_stored = if want_alignment { cells } else { 3 * width as u64 };
    out.blocks = crate::banded::strip_blocks(m, n, width / 2, crate::banded::STRIP_COLS);

    let at = |i: usize, j: usize| -> i32 {
        let a = i + j;
        let o = offsets[a];
        let b = &bands[a];
        if i >= o && i < o + b.len() {
            b[i - o]
        } else {
            NEG
        }
    };
    let score = at(m, n);
    if score <= NEG / 2 {
        out.dropped = true;
        return out;
    }
    out.score = Some(score);

    if want_alignment {
        let (mut i, mut j) = (m, n);
        let mut cigar = Cigar::new();
        while i > 0 || j > 0 {
            let here = at(i, j);
            if i > 0
                && j > 0
                && at(i - 1, j - 1) > NEG / 2
                && here == at(i - 1, j - 1) + scheme.score(query[i - 1], reference[j - 1])
            {
                cigar.push(if query[i - 1] == reference[j - 1] { Op::Match } else { Op::Mismatch });
                i -= 1;
                j -= 1;
            } else if i > 0 && at(i - 1, j) > NEG / 2 && here == at(i - 1, j) + gi {
                cigar.push(Op::Insert);
                i -= 1;
            } else if j > 0 && at(i, j - 1) > NEG / 2 && here == at(i, j - 1) + gd {
                cigar.push(Op::Delete);
                j -= 1;
            } else {
                // The stored band does not contain a consistent path;
                // surface as dropped rather than emit a bogus CIGAR.
                out.score = None;
                out.dropped = true;
                return out;
            }
        }
        cigar.reverse();
        out.traceback_steps = cigar.len() as u64;
        out.alignment = Some(smx_align_core::Alignment { score, cigar });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use smx_align_core::dp;

    fn dna(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % 4) as u8
            })
            .collect()
    }

    #[test]
    fn full_width_matches_golden() {
        let q = dna(80, 3);
        let r = dna(75, 11);
        let scheme = ScoringScheme::edit();
        let out = adaptive_banded_align(&q, &r, &scheme, 200, true);
        assert_eq!(out.score, Some(dp::score_only(&q, &r, &scheme)));
        out.alignment.unwrap().verify(&q, &r, &scheme).unwrap();
    }

    #[test]
    fn follows_a_long_deletion_where_static_band_fails() {
        // The query lacks a 60-base block of the reference: the optimal
        // path drifts 60 diagonals. The adaptive band follows the drift
        // over the following antidiagonals; a static band of the same
        // half-width misses it.
        let r = dna(400, 7);
        let mut q = r[..150].to_vec();
        q.extend_from_slice(&r[210..]); // 60-base deletion
        let scheme = ScoringScheme::linear(2, -4, -4).unwrap();
        let golden = dp::score_only(&q, &r, &scheme);

        let adaptive = adaptive_banded_align(&q, &r, &scheme, 80, true);
        assert_eq!(adaptive.score, Some(golden), "adaptive follows the drift");
        adaptive.alignment.unwrap().verify(&q, &r, &scheme).unwrap();

        let static_band = crate::banded::banded_align(&q, &r, &scheme, 16, None, false);
        assert!(static_band.score.is_none_or(|s| s < golden), "static narrow band should miss");
    }

    #[test]
    fn cells_scale_with_width_not_matrix() {
        let q = dna(500, 3);
        let r = dna(500, 3);
        let scheme = ScoringScheme::edit();
        let out = adaptive_banded_align(&q, &r, &scheme, 33, false);
        assert!(out.cells_computed < (1001 * 34) as u64);
        assert_eq!(out.score, Some(0));
    }

    #[test]
    fn moderate_errors_with_narrow_band() {
        let r = dna(600, 9);
        let mut q = r.clone();
        q[100] ^= 1;
        q[350] ^= 2;
        q.remove(200);
        q.insert(420, 3);
        let scheme = ScoringScheme::edit();
        let out = adaptive_banded_align(&q, &r, &scheme, 33, true);
        assert_eq!(out.score, Some(dp::score_only(&q, &r, &scheme)));
    }

    #[test]
    fn escaping_band_never_overclaims() {
        let r = dna(120, 5);
        let q = r[100..].to_vec();
        let scheme = ScoringScheme::edit();
        let out = adaptive_banded_align(&q, &r, &scheme, 8, false);
        if let Some(s) = out.score {
            assert!(s <= dp::score_only(&q, &r, &scheme));
        } else {
            assert!(out.dropped);
        }
    }

    #[test]
    fn degenerate_inputs_drop() {
        let scheme = ScoringScheme::edit();
        assert!(adaptive_banded_align(&[], &[0], &scheme, 8, false).dropped);
        assert!(adaptive_banded_align(&[0], &[0], &scheme, 0, false).dropped);
    }
}
