//! The wavefront algorithm (WFA) for edit distance — the `O(n·s)` exact
//! aligner family the SMX authors' earlier work introduced ([72] in the
//! paper). Included as the modern software comparison point for the
//! DNA-edit configuration: its work scales with the *score* `s` rather
//! than with `m·n`, which is exactly the regime where DP-block
//! accelerators and wavefront methods trade places.

use smx_align_core::AlignError;

/// Result of a wavefront edit-distance computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WfaResult {
    /// The edit distance.
    pub distance: u32,
    /// Wavefront cells computed (the algorithm's work, `O(s²)`).
    pub cells: u64,
}

/// Computes the global edit distance by wavefront expansion.
///
/// # Errors
///
/// Returns [`AlignError::EmptySequence`] for empty inputs.
pub fn edit_distance(query: &[u8], reference: &[u8]) -> Result<WfaResult, AlignError> {
    if query.is_empty() || reference.is_empty() {
        return Err(AlignError::EmptySequence);
    }
    let (m, n) = (query.len() as i64, reference.len() as i64);
    let target_k = n - m; // diagonal of the bottom-right cell
    let target_offset = n; // offset = reference characters consumed (j)

    // Wavefront for score s: offsets[k] = furthest j on diagonal k = j − i
    // reachable with edit distance s. Stored densely over k ∈ [lo, hi].
    let mut lo: i64 = 0;
    let mut hi: i64 = 0;
    let mut offsets: Vec<i64> = vec![0];
    let mut cells: u64 = 1;

    let extend = |k: i64, mut j: i64| -> i64 {
        let mut i = j - k;
        while i < m && j < n && query[i as usize] == reference[j as usize] {
            i += 1;
            j += 1;
        }
        j
    };

    // Score 0: extend along the main diagonal.
    offsets[0] = extend(0, 0);
    let mut s: u32 = 0;
    loop {
        if (lo..=hi).contains(&target_k) && offsets[(target_k - lo) as usize] >= target_offset {
            return Ok(WfaResult { distance: s, cells });
        }
        // Expand to score s+1 over diagonals [lo-1, hi+1].
        let new_lo = (lo - 1).max(-m);
        let new_hi = (hi + 1).min(n);
        let mut next: Vec<i64> = vec![i64::MIN; (new_hi - new_lo + 1) as usize];
        for k in new_lo..=new_hi {
            let get = |kk: i64| -> i64 {
                if (lo..=hi).contains(&kk) {
                    offsets[(kk - lo) as usize]
                } else {
                    i64::MIN
                }
            };
            // Insertion (down a row): from k+1, same offset.
            // Deletion (right a column): from k-1, offset + 1.
            // Mismatch (diagonal): same k, offset + 1.
            let best = get(k + 1).max(get(k - 1).saturating_add(1)).max(get(k).saturating_add(1));
            if best < 0 {
                continue;
            }
            // Clamp to the matrix and extend along matches.
            let i = best - k;
            if i > m || best > n || i < 0 {
                // Out of the matrix on this diagonal.
                let clamped = best.min(n).min(m + k);
                if clamped - k > m || clamped > n || clamped < 0 || clamped - k < 0 {
                    continue;
                }
                next[(k - new_lo) as usize] = extend(k, clamped);
            } else {
                next[(k - new_lo) as usize] = extend(k, best);
            }
        }
        cells += next.iter().filter(|&&v| v != i64::MIN).count() as u64;
        offsets = next;
        lo = new_lo;
        hi = new_hi;
        s += 1;
        debug_assert!(s as i64 <= m + n, "wavefront failed to converge");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use smx_align_core::dp;

    #[test]
    fn matches_golden_small() {
        let q = b"kitten".map(|c| c - b'a');
        let r = b"sitting".map(|c| c - b'a');
        assert_eq!(edit_distance(&q, &r).unwrap().distance, 3);
    }

    #[test]
    fn identical_costs_one_wavefront() {
        let q = vec![2u8; 500];
        let res = edit_distance(&q, &q).unwrap();
        assert_eq!(res.distance, 0);
        assert_eq!(res.cells, 1);
    }

    #[test]
    fn work_scales_with_score_not_area() {
        // 2000-char strings differing by a handful of edits: WFA touches
        // orders of magnitude fewer cells than the 4M-cell DP matrix.
        let r: Vec<u8> = (0..2000u32).map(|i| (i.wrapping_mul(7) % 4) as u8).collect();
        let mut q = r.clone();
        q[100] ^= 1;
        q[900] ^= 2;
        q.remove(1500);
        let res = edit_distance(&q, &r).unwrap();
        assert_eq!(res.distance as u64, dp::edit_distance(&q, &r) as u64);
        assert!(res.cells < 100, "cells {}", res.cells);
    }

    #[test]
    fn length_difference_only() {
        let q = vec![0u8; 10];
        let r = vec![0u8; 25];
        assert_eq!(edit_distance(&q, &r).unwrap().distance, 15);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn matches_golden_random(
            q in proptest::collection::vec(0u8..4, 1..120),
            r in proptest::collection::vec(0u8..4, 1..120),
        ) {
            prop_assert_eq!(
                edit_distance(&q, &r).unwrap().distance,
                dp::edit_distance(&q, &r)
            );
        }
    }
}
