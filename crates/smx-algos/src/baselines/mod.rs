//! State-of-the-art comparator models (paper §11, Table 3): published
//! peak-GCUPS/area figures, the analytic projections the paper makes for
//! CUDASW++ on an H100 versus a 72-core SMX-enhanced Grace CPU, and two
//! functional software baselines the edit-distance literature rests on —
//! Myers's blocked bit-parallel algorithm ([`myers`], the Edlib core) and
//! the wavefront algorithm ([`wfa`]).

pub mod myers;
pub mod wfa;
pub mod wfa_affine;

use smx_align_core::AlignmentConfig;

/// A row of Table 3: a proposal's peak throughput and area per processing
/// unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SotaEntry {
    /// Proposal name.
    pub name: &'static str,
    /// Device class.
    pub device: &'static str,
    /// Processing units the peak is reported over.
    pub units: u32,
    /// Peak GCUPS per processing unit.
    pub pgcups_per_unit: f64,
    /// Additional silicon area per processing unit (mm²), when reported.
    pub area_mm2_per_unit: Option<f64>,
    /// Supported models: (edit, gap, protein, traceback).
    pub supports: (bool, bool, bool, bool),
}

/// Published Table-3 rows for the non-SMX proposals.
#[must_use]
pub fn table3_entries() -> Vec<SotaEntry> {
    vec![
        SotaEntry {
            name: "KSW2",
            device: "CPU",
            units: 1,
            pgcups_per_unit: 1.8,
            area_mm2_per_unit: None,
            supports: (true, true, true, true),
        },
        SotaEntry {
            name: "BlockAligner",
            device: "CPU",
            units: 1,
            pgcups_per_unit: 3.6,
            area_mm2_per_unit: None,
            supports: (true, true, true, true),
        },
        SotaEntry {
            name: "GMX",
            device: "ISA",
            units: 1,
            pgcups_per_unit: 1024.0,
            area_mm2_per_unit: Some(0.02),
            supports: (true, false, false, true),
        },
        SotaEntry {
            name: "GASAL2",
            device: "GPU",
            units: 28,
            pgcups_per_unit: 2.3,
            area_mm2_per_unit: None,
            supports: (true, true, false, true),
        },
        SotaEntry {
            name: "CUDASW++4",
            device: "GPU (ISA)",
            units: 132,
            pgcups_per_unit: 63.3,
            area_mm2_per_unit: None,
            supports: (true, true, true, false),
        },
        SotaEntry {
            name: "BioSEAL",
            device: "PIM",
            units: 15,
            pgcups_per_unit: 6046.7,
            area_mm2_per_unit: Some(230.0),
            supports: (true, true, true, false),
        },
        SotaEntry {
            name: "GenASM",
            device: "DSA",
            units: 32,
            pgcups_per_unit: 64.0,
            area_mm2_per_unit: Some(0.33),
            supports: (true, false, false, true),
        },
        SotaEntry {
            name: "Darwin",
            device: "DSA",
            units: 64,
            pgcups_per_unit: 54.2,
            area_mm2_per_unit: Some(1.34),
            supports: (true, true, false, true),
        },
        SotaEntry {
            name: "GenDP",
            device: "DSA",
            units: 64,
            pgcups_per_unit: 4.7,
            area_mm2_per_unit: Some(5.39),
            supports: (true, true, false, true),
        },
        SotaEntry {
            name: "Mao-Jan Lin",
            device: "DSA",
            units: 1,
            pgcups_per_unit: 91.4,
            area_mm2_per_unit: Some(5.72),
            supports: (true, true, true, true),
        },
        SotaEntry {
            name: "Talco-XDrop",
            device: "DSA",
            units: 32,
            pgcups_per_unit: 12.8,
            area_mm2_per_unit: Some(1.82),
            supports: (true, true, true, true),
        },
    ]
}

/// SMX peak GCUPS per configuration (one tile per cycle at 1 GHz).
#[must_use]
pub fn smx_peak_gcups(config: AlignmentConfig) -> f64 {
    let vl = config.element_width().vl() as f64;
    vl * vl
}

/// CUDASW++ 4.0 effective protein throughput on an H100 (GCUPS).
///
/// 132 SMs × 63.3 peak GCUPS/SM at 2 GHz, derated by an effective
/// utilization (divergence and memory effects) chosen so the paper's
/// "72-core SMX Grace is 1.7× faster" projection holds.
#[must_use]
pub fn cudasw_h100_effective_gcups() -> f64 {
    132.0 * 63.3 * 0.45
}

/// Projected protein throughput of a 72-core SMX-enhanced Grace at 1 GHz
/// (GCUPS), assuming the §8.1 ~90% engine utilization.
#[must_use]
pub fn smx_grace_protein_gcups() -> f64 {
    72.0 * smx_peak_gcups(AlignmentConfig::Protein) * 0.9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smx_peaks_match_table3() {
        assert_eq!(smx_peak_gcups(AlignmentConfig::DnaEdit), 1024.0);
        assert_eq!(smx_peak_gcups(AlignmentConfig::DnaGap), 256.0);
        assert_eq!(smx_peak_gcups(AlignmentConfig::Protein), 100.0);
        assert_eq!(smx_peak_gcups(AlignmentConfig::Ascii), 64.0);
    }

    #[test]
    fn grace_projection_beats_h100() {
        let ratio = smx_grace_protein_gcups() / cudasw_h100_effective_gcups();
        assert!((1.4..2.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn table3_has_all_comparators() {
        let names: Vec<&str> = table3_entries().iter().map(|e| e.name).collect();
        for expect in ["KSW2", "GMX", "Darwin", "GenASM", "CUDASW++4", "Talco-XDrop"] {
            assert!(names.contains(&expect), "{expect} missing");
        }
    }
}
