//! Gap-affine wavefront algorithm (WFA, Marco-Sola et al. — reference
//! [72] of the paper). Exact global alignment under affine penalties in
//! `O(n·s)` time, with three wavefront components (M/I/D) per score.
//!
//! Complements the edit-distance wavefront in [`super::wfa`]: together
//! they are the modern software family the SMX authors position DP-block
//! acceleration against.

use smx_align_core::dp_affine::AffineScheme;
use smx_align_core::AlignError;

/// Result of an affine wavefront computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AffineWfaResult {
    /// Optimal global alignment score (maximizing, ≤ 0 contributions from
    /// gaps/mismatches).
    pub score: i32,
    /// Wavefront cells computed.
    pub cells: u64,
}

const NONE: i64 = i64::MIN / 4;

/// Advances a wavefront offset by one cell, guarding the sentinel
/// *before* arithmetic: `NONE` must never flow through `+1`, or a
/// sentinel-valued cell near the saturation boundary could masquerade as
/// a (deeply negative but comparable) offset in the `max` reductions
/// below. Valid offsets are small (`0..=n`), so plain addition is exact.
fn succ(offset: i64) -> i64 {
    if offset <= NONE {
        NONE
    } else {
        offset + 1
    }
}

/// One wavefront: offsets per diagonal `k ∈ [lo, hi]`.
#[derive(Debug, Clone)]
struct Wavefront {
    lo: i64,
    hi: i64,
    offsets: Vec<i64>,
}

impl Wavefront {
    fn empty() -> Wavefront {
        Wavefront { lo: 0, hi: -1, offsets: Vec::new() }
    }

    fn get(&self, k: i64) -> i64 {
        if (self.lo..=self.hi).contains(&k) {
            self.offsets[(k - self.lo) as usize]
        } else {
            NONE
        }
    }

    fn is_empty(&self) -> bool {
        self.hi < self.lo
    }
}

/// Computes the optimal gap-affine global alignment score by wavefront
/// expansion over penalties.
///
/// WFA works on *penalties*: internally the scheme is converted so a
/// match costs 0 (requires `match_score == 0`; use
/// [`affine_wfa_score_general`] for non-zero match scores).
///
/// # Errors
///
/// Returns [`AlignError::EmptySequence`] for empty inputs and
/// [`AlignError::InvalidScoring`] if `match_score != 0`.
pub fn affine_wfa_score(
    query: &[u8],
    reference: &[u8],
    scheme: &AffineScheme,
) -> Result<AffineWfaResult, AlignError> {
    if query.is_empty() || reference.is_empty() {
        return Err(AlignError::EmptySequence);
    }
    if scheme.match_score != 0 {
        return Err(AlignError::InvalidScoring(
            "wavefronts require a zero match score; use affine_wfa_score_general".into(),
        ));
    }
    let x = (-scheme.mismatch) as usize;
    let o = (-scheme.gap_open) as usize;
    let e = (-scheme.gap_extend) as usize;
    if x == 0 || e == 0 {
        return Err(AlignError::InvalidScoring(
            "wavefronts need strictly positive mismatch and extend penalties".into(),
        ));
    }
    let (m, n) = (query.len() as i64, reference.len() as i64);
    let target_k = n - m;

    // Wavefronts per penalty s: mwf/iwf/dwf.
    let mut mwf: Vec<Wavefront> = Vec::new();
    let mut iwf: Vec<Wavefront> = Vec::new();
    let mut dwf: Vec<Wavefront> = Vec::new();
    let mut cells: u64 = 0;

    let extend = |k: i64, mut j: i64| -> i64 {
        if j < 0 {
            return j;
        }
        let mut i = j - k;
        while i < m && j < n && i >= 0 && query[i as usize] == reference[j as usize] {
            i += 1;
            j += 1;
        }
        j
    };

    // s = 0: the initial match run on the main diagonal.
    let w0 = Wavefront { lo: 0, hi: 0, offsets: vec![extend(0, 0)] };
    cells += 1;
    if w0.get(target_k) >= n {
        return Ok(AffineWfaResult { score: 0, cells });
    }
    mwf.push(w0.clone());
    iwf.push(Wavefront::empty());
    dwf.push(Wavefront::empty());

    let max_s = (x + o + e) * (m + n) as usize + 1;
    for s in 1..=max_s {
        let prev = |v: &Vec<Wavefront>, back: usize| -> Wavefront {
            if back <= s && s - back < v.len() {
                v[s - back].clone()
            } else {
                Wavefront::empty()
            }
        };
        let m_x = prev(&mwf, x); // mismatch source
        let m_oe = prev(&mwf, o + e); // gap-open source
        let i_e = prev(&iwf, e); // gap-extend sources
        let d_e = prev(&dwf, e);

        let candidates = [&m_x, &m_oe, &i_e, &d_e];
        if candidates.iter().all(|w| w.is_empty()) {
            mwf.push(Wavefront::empty());
            iwf.push(Wavefront::empty());
            dwf.push(Wavefront::empty());
            continue;
        }
        let lo = candidates.iter().filter(|w| !w.is_empty()).map(|w| w.lo).min().unwrap() - 1;
        let hi = candidates.iter().filter(|w| !w.is_empty()).map(|w| w.hi).max().unwrap() + 1;
        let len = (hi - lo + 1) as usize;
        let mut new_i = vec![NONE; len];
        let mut new_d = vec![NONE; len];
        let mut new_m = vec![NONE; len];
        for k in lo..=hi {
            let idx = (k - lo) as usize;
            // I: gap in the reference (consumes query; moves down => k-1
            // relative... offset j unchanged, i increases => k = j - i
            // decreases; so I[s][k] comes from k+1? Using the standard
            // formulation with offsets = j: I from (k+1) keeps j, D from
            // (k-1) advances j.
            let i_open = m_oe.get(k + 1);
            let i_ext = i_e.get(k + 1);
            let ival = i_open.max(i_ext);
            // Sentinels are guarded before the +1 (see `succ`), so every
            // value below is either exactly NONE or a genuine offset —
            // nothing in between can win a max() against a valid cell.
            let d_open = succ(m_oe.get(k - 1));
            let d_ext = succ(d_e.get(k - 1));
            let dval = d_open.max(d_ext);
            let mval = succ(m_x.get(k));
            let best = mval.max(ival).max(dval);
            debug_assert!(
                best == NONE || best >= 0,
                "corrupted wavefront offset {best} at s={s} k={k}"
            );
            new_i[idx] = ival;
            new_d[idx] = dval;
            if best == NONE {
                continue;
            }
            // Clamp into the matrix, then extend matches on M.
            let j = best;
            let i_coord = j - k;
            if j < 0 || j > n || i_coord < 0 || i_coord > m {
                continue;
            }
            new_m[idx] = extend(k, j);
        }
        cells += new_m.iter().filter(|&&v| v > NONE).count() as u64;
        let wf_m = Wavefront { lo, hi, offsets: new_m };
        let wf_i = Wavefront { lo, hi, offsets: new_i };
        let wf_d = Wavefront { lo, hi, offsets: new_d };
        if wf_m.get(target_k) >= n && (wf_m.get(target_k) - target_k) >= m {
            return Ok(AffineWfaResult { score: -(s as i32), cells });
        }
        mwf.push(wf_m);
        iwf.push(wf_i);
        dwf.push(wf_d);
    }
    Err(AlignError::Internal("affine wavefront failed to converge".into()))
}

/// Gap-affine WFA for schemes with a non-zero match score, via the
/// standard score transformation: aligning under `(M, X, O, E)` equals
/// aligning under `(0, X−M, O, E−M/2)` up to a known offset when `M` is
/// even (the WFA paper's reduction). For odd `M`, penalties are doubled
/// first.
///
/// # Errors
///
/// Propagates [`affine_wfa_score`] errors.
pub fn affine_wfa_score_general(
    query: &[u8],
    reference: &[u8],
    scheme: &AffineScheme,
) -> Result<AffineWfaResult, AlignError> {
    if scheme.match_score == 0 {
        return affine_wfa_score(query, reference, scheme);
    }
    // Double everything if M is odd so M/2 stays integral.
    let f = if scheme.match_score % 2 == 0 { 1 } else { 2 };
    let m_s = scheme.match_score * f;
    let x_s = scheme.mismatch * f;
    let o_s = scheme.gap_open * f;
    let e_s = scheme.gap_extend * f;
    let transformed = AffineScheme {
        match_score: 0,
        mismatch: x_s - m_s,
        gap_open: o_s,
        gap_extend: e_s - m_s / 2,
    };
    let (m, n) = (query.len() as i64, reference.len() as i64);
    let res = affine_wfa_score(query, reference, &transformed)?;
    // score_orig * f = score_transformed + M_s * (m + n) / 2. The scaled
    // value is always an exact multiple of f (M_s is even after the
    // doubling above, and the transform identity is exact per alignment),
    // but the division must still be floor division: `/` truncates toward
    // zero, which would round a negative score *up* if the invariant were
    // ever violated. div_euclid floors, and the debug assert pins the
    // exactness invariant itself.
    let scaled = i64::from(res.score) + i64::from(m_s) * (m + n) / 2;
    debug_assert_eq!(
        scaled.rem_euclid(i64::from(f)),
        0,
        "rescaled WFA score must be an exact multiple of the doubling factor"
    );
    Ok(AffineWfaResult { score: scaled.div_euclid(i64::from(f)) as i32, cells: res.cells })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use smx_align_core::dp_affine;

    fn edit_like() -> AffineScheme {
        AffineScheme { match_score: 0, mismatch: -4, gap_open: -6, gap_extend: -2 }
    }

    #[test]
    fn identical_sequences_score_zero() {
        let q = vec![1u8; 100];
        let r = q.clone();
        let res = affine_wfa_score(&q, &r, &edit_like()).unwrap();
        assert_eq!(res.score, 0);
        assert_eq!(res.cells, 1);
    }

    #[test]
    fn matches_gotoh_small() {
        let q = [0u8, 1, 2, 3, 0, 1];
        let r = [0u8, 1, 3, 3, 0, 1, 2];
        let s = edit_like();
        let golden = dp_affine::affine_score(&q, &r, &s);
        assert_eq!(affine_wfa_score(&q, &r, &s).unwrap().score, golden);
    }

    #[test]
    fn general_transform_matches_gotoh() {
        let s = AffineScheme::minimap2(); // M = 2
        let q = [0u8, 1, 2, 3, 0, 1, 1, 2];
        let r = [0u8, 1, 3, 3, 0, 1, 2];
        let golden = dp_affine::affine_score(&q, &r, &s);
        assert_eq!(affine_wfa_score_general(&q, &r, &s).unwrap().score, golden);
    }

    #[test]
    fn work_scales_with_divergence() {
        let r: Vec<u8> = (0..1500u32).map(|i| (i.wrapping_mul(7) % 4) as u8).collect();
        let mut q = r.clone();
        q[700] ^= 1;
        let res = affine_wfa_score(&q, &r, &edit_like()).unwrap();
        assert!(res.cells < 200, "cells {}", res.cells);
        assert_eq!(res.score, -4);
    }

    #[test]
    fn nonzero_match_rejected_by_core_entry() {
        let s = AffineScheme::minimap2();
        assert!(affine_wfa_score(&[0], &[0], &s).is_err());
    }

    #[test]
    fn sentinel_is_guarded_before_arithmetic() {
        // The sentinel must be absorbing under succ: a NONE cell may never
        // pick up +1 per expansion step, or after enough steps it could
        // compare above a valid offset in the max() reductions.
        assert_eq!(succ(NONE), NONE);
        assert_eq!(succ(0), 1);
        assert_eq!(succ(41), 42);
    }

    #[test]
    fn adversarial_high_error_pairs_match_gotoh() {
        // Sentinel regression: high-error pairs keep most wavefront cells
        // absent for many expansion rounds, so NONE floods the candidate
        // maxes — exactly the traffic where unguarded sentinel arithmetic
        // would corrupt offsets. Every shape must match the full affine DP.
        let schemes = [
            edit_like(),
            // Zero gap-open: gap costs collapse onto the extend penalty and
            // the open/extend sources coincide penalty-wise.
            AffineScheme { match_score: 0, mismatch: -1, gap_open: 0, gap_extend: -1 },
            // Heavy open, cheap extend: long absent I/D stretches.
            AffineScheme { match_score: 0, mismatch: -2, gap_open: -11, gap_extend: -1 },
        ];
        let all_mismatch: (Vec<u8>, Vec<u8>) = (vec![0; 30], vec![1; 30]);
        let skew_a: (Vec<u8>, Vec<u8>) = (vec![0; 1], vec![1; 30]);
        let skew_b: (Vec<u8>, Vec<u8>) = (vec![0; 30], vec![1; 1]);
        let alternating: (Vec<u8>, Vec<u8>) =
            ((0..40u8).map(|i| i % 2).collect(), (0..40u8).map(|i| (i + 1) % 2).collect());
        for s in &schemes {
            for (q, r) in [&all_mismatch, &skew_a, &skew_b, &alternating] {
                assert_eq!(
                    affine_wfa_score(q, r, s).unwrap().score,
                    dp_affine::affine_score(q, r, s),
                    "scheme {s:?}"
                );
            }
        }
    }

    #[test]
    fn negative_scores_with_odd_match_divide_exactly() {
        // Truncation regression: an odd match score forces the f = 2
        // doubling, so the rescaled value is divided at the end — on
        // negative optimal scores `/` (truncation toward zero) would round
        // the result up; floor division must agree with the affine DP.
        let s = AffineScheme { match_score: 1, mismatch: -3, gap_open: -5, gap_extend: -2 };
        let cases: [(Vec<u8>, Vec<u8>); 3] = [
            (vec![0; 10], vec![1; 10]),
            (vec![0, 1, 2, 3, 0, 1, 2, 3], vec![3, 2, 1, 0, 3, 2]),
            (vec![2; 4], vec![3; 17]),
        ];
        let mut saw_negative = false;
        for (q, r) in &cases {
            let golden = dp_affine::affine_score(q, r, &s);
            saw_negative |= golden < 0;
            assert_eq!(affine_wfa_score_general(q, r, &s).unwrap().score, golden);
        }
        assert!(saw_negative, "cases must exercise negative optimal scores");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]
        #[test]
        fn matches_gotoh_random(
            q in proptest::collection::vec(0u8..4, 1..60),
            r in proptest::collection::vec(0u8..4, 1..60),
        ) {
            let s = edit_like();
            prop_assert_eq!(
                affine_wfa_score(&q, &r, &s).unwrap().score,
                dp_affine::affine_score(&q, &r, &s)
            );
        }

        #[test]
        fn general_matches_gotoh_random(
            q in proptest::collection::vec(0u8..4, 1..40),
            r in proptest::collection::vec(0u8..4, 1..40),
        ) {
            let s = AffineScheme::minimap2();
            prop_assert_eq!(
                affine_wfa_score_general(&q, &r, &s).unwrap().score,
                dp_affine::affine_score(&q, &r, &s)
            );
        }

        #[test]
        fn high_error_binary_matches_gotoh(
            q in proptest::collection::vec(0u8..2, 1..50),
            r in proptest::collection::vec(0u8..2, 1..50),
        ) {
            // Binary alphabet: ~50% substitution rate keeps the wavefront
            // full of sentinel cells deep into the expansion.
            let s = edit_like();
            prop_assert_eq!(
                affine_wfa_score(&q, &r, &s).unwrap().score,
                dp_affine::affine_score(&q, &r, &s)
            );
        }

        #[test]
        fn odd_match_negative_scores_match_gotoh(
            q in proptest::collection::vec(0u8..6, 1..35),
            r in proptest::collection::vec(0u8..6, 1..35),
        ) {
            // Odd match score (f = 2 doubling) over a wide alphabet: most
            // positions mismatch, so optimal scores are mostly negative and
            // the final division is exercised on the rounding-sensitive side.
            let s = AffineScheme { match_score: 3, mismatch: -5, gap_open: -7, gap_extend: -3 };
            prop_assert_eq!(
                affine_wfa_score_general(&q, &r, &s).unwrap().score,
                dp_affine::affine_score(&q, &r, &s)
            );
        }
    }
}
