//! Gap-affine wavefront algorithm (WFA, Marco-Sola et al. — reference
//! [72] of the paper). Exact global alignment under affine penalties in
//! `O(n·s)` time, with three wavefront components (M/I/D) per score.
//!
//! Complements the edit-distance wavefront in [`super::wfa`]: together
//! they are the modern software family the SMX authors position DP-block
//! acceleration against.

use smx_align_core::dp_affine::AffineScheme;
use smx_align_core::AlignError;

/// Result of an affine wavefront computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AffineWfaResult {
    /// Optimal global alignment score (maximizing, ≤ 0 contributions from
    /// gaps/mismatches).
    pub score: i32,
    /// Wavefront cells computed.
    pub cells: u64,
}

const NONE: i64 = i64::MIN / 4;

/// One wavefront: offsets per diagonal `k ∈ [lo, hi]`.
#[derive(Debug, Clone)]
struct Wavefront {
    lo: i64,
    hi: i64,
    offsets: Vec<i64>,
}

impl Wavefront {
    fn empty() -> Wavefront {
        Wavefront { lo: 0, hi: -1, offsets: Vec::new() }
    }

    fn get(&self, k: i64) -> i64 {
        if (self.lo..=self.hi).contains(&k) {
            self.offsets[(k - self.lo) as usize]
        } else {
            NONE
        }
    }

    fn is_empty(&self) -> bool {
        self.hi < self.lo
    }
}

/// Computes the optimal gap-affine global alignment score by wavefront
/// expansion over penalties.
///
/// WFA works on *penalties*: internally the scheme is converted so a
/// match costs 0 (requires `match_score == 0`; use
/// [`affine_wfa_score_general`] for non-zero match scores).
///
/// # Errors
///
/// Returns [`AlignError::EmptySequence`] for empty inputs and
/// [`AlignError::InvalidScoring`] if `match_score != 0`.
pub fn affine_wfa_score(
    query: &[u8],
    reference: &[u8],
    scheme: &AffineScheme,
) -> Result<AffineWfaResult, AlignError> {
    if query.is_empty() || reference.is_empty() {
        return Err(AlignError::EmptySequence);
    }
    if scheme.match_score != 0 {
        return Err(AlignError::InvalidScoring(
            "wavefronts require a zero match score; use affine_wfa_score_general".into(),
        ));
    }
    let x = (-scheme.mismatch) as usize;
    let o = (-scheme.gap_open) as usize;
    let e = (-scheme.gap_extend) as usize;
    if x == 0 || e == 0 {
        return Err(AlignError::InvalidScoring(
            "wavefronts need strictly positive mismatch and extend penalties".into(),
        ));
    }
    let (m, n) = (query.len() as i64, reference.len() as i64);
    let target_k = n - m;

    // Wavefronts per penalty s: mwf/iwf/dwf.
    let mut mwf: Vec<Wavefront> = Vec::new();
    let mut iwf: Vec<Wavefront> = Vec::new();
    let mut dwf: Vec<Wavefront> = Vec::new();
    let mut cells: u64 = 0;

    let extend = |k: i64, mut j: i64| -> i64 {
        if j < 0 {
            return j;
        }
        let mut i = j - k;
        while i < m && j < n && i >= 0 && query[i as usize] == reference[j as usize] {
            i += 1;
            j += 1;
        }
        j
    };

    // s = 0: the initial match run on the main diagonal.
    let w0 = Wavefront { lo: 0, hi: 0, offsets: vec![extend(0, 0)] };
    cells += 1;
    if w0.get(target_k) >= n {
        return Ok(AffineWfaResult { score: 0, cells });
    }
    mwf.push(w0.clone());
    iwf.push(Wavefront::empty());
    dwf.push(Wavefront::empty());

    let max_s = (x + o + e) * (m + n) as usize + 1;
    for s in 1..=max_s {
        let prev = |v: &Vec<Wavefront>, back: usize| -> Wavefront {
            if back <= s && s - back < v.len() {
                v[s - back].clone()
            } else {
                Wavefront::empty()
            }
        };
        let m_x = prev(&mwf, x); // mismatch source
        let m_oe = prev(&mwf, o + e); // gap-open source
        let i_e = prev(&iwf, e); // gap-extend sources
        let d_e = prev(&dwf, e);

        let candidates = [&m_x, &m_oe, &i_e, &d_e];
        if candidates.iter().all(|w| w.is_empty()) {
            mwf.push(Wavefront::empty());
            iwf.push(Wavefront::empty());
            dwf.push(Wavefront::empty());
            continue;
        }
        let lo = candidates.iter().filter(|w| !w.is_empty()).map(|w| w.lo).min().unwrap() - 1;
        let hi = candidates.iter().filter(|w| !w.is_empty()).map(|w| w.hi).max().unwrap() + 1;
        let len = (hi - lo + 1) as usize;
        let mut new_i = vec![NONE; len];
        let mut new_d = vec![NONE; len];
        let mut new_m = vec![NONE; len];
        for k in lo..=hi {
            let idx = (k - lo) as usize;
            // I: gap in the reference (consumes query; moves down => k-1
            // relative... offset j unchanged, i increases => k = j - i
            // decreases; so I[s][k] comes from k+1? Using the standard
            // formulation with offsets = j: I from (k+1) keeps j, D from
            // (k-1) advances j.
            let i_open = m_oe.get(k + 1);
            let i_ext = i_e.get(k + 1);
            let ival = i_open.max(i_ext);
            let d_open = m_oe.get(k - 1).saturating_add(1);
            let d_ext = d_e.get(k - 1).saturating_add(1);
            let dval = d_open.max(d_ext).max(NONE);
            let mval = m_x.get(k).saturating_add(1).max(NONE);
            let best = mval.max(ival).max(dval);
            new_i[idx] = ival;
            new_d[idx] = if dval < NONE / 2 { NONE } else { dval };
            if best < NONE / 2 {
                continue;
            }
            // Clamp into the matrix, then extend matches on M.
            let j = best;
            let i_coord = j - k;
            if j < 0 || j > n || i_coord < 0 || i_coord > m {
                continue;
            }
            new_m[idx] = extend(k, j);
        }
        cells += new_m.iter().filter(|&&v| v > NONE / 2).count() as u64;
        let wf_m = Wavefront { lo, hi, offsets: new_m };
        let wf_i = Wavefront { lo, hi, offsets: new_i };
        let wf_d = Wavefront { lo, hi, offsets: new_d };
        if wf_m.get(target_k) >= n && (wf_m.get(target_k) - target_k) >= m {
            return Ok(AffineWfaResult { score: -(s as i32), cells });
        }
        mwf.push(wf_m);
        iwf.push(wf_i);
        dwf.push(wf_d);
    }
    Err(AlignError::Internal("affine wavefront failed to converge".into()))
}

/// Gap-affine WFA for schemes with a non-zero match score, via the
/// standard score transformation: aligning under `(M, X, O, E)` equals
/// aligning under `(0, X−M, O, E−M/2)` up to a known offset when `M` is
/// even (the WFA paper's reduction). For odd `M`, penalties are doubled
/// first.
///
/// # Errors
///
/// Propagates [`affine_wfa_score`] errors.
pub fn affine_wfa_score_general(
    query: &[u8],
    reference: &[u8],
    scheme: &AffineScheme,
) -> Result<AffineWfaResult, AlignError> {
    if scheme.match_score == 0 {
        return affine_wfa_score(query, reference, scheme);
    }
    // Double everything if M is odd so M/2 stays integral.
    let f = if scheme.match_score % 2 == 0 { 1 } else { 2 };
    let m_s = scheme.match_score * f;
    let x_s = scheme.mismatch * f;
    let o_s = scheme.gap_open * f;
    let e_s = scheme.gap_extend * f;
    let transformed = AffineScheme {
        match_score: 0,
        mismatch: x_s - m_s,
        gap_open: o_s,
        gap_extend: e_s - m_s / 2,
    };
    let (m, n) = (query.len() as i64, reference.len() as i64);
    let res = affine_wfa_score(query, reference, &transformed)?;
    // score_orig * f = score_transformed + M_s * (m + n) / 2.
    let scaled = i64::from(res.score) + i64::from(m_s) * (m + n) / 2;
    Ok(AffineWfaResult { score: (scaled / i64::from(f)) as i32, cells: res.cells })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use smx_align_core::dp_affine;

    fn edit_like() -> AffineScheme {
        AffineScheme { match_score: 0, mismatch: -4, gap_open: -6, gap_extend: -2 }
    }

    #[test]
    fn identical_sequences_score_zero() {
        let q = vec![1u8; 100];
        let r = q.clone();
        let res = affine_wfa_score(&q, &r, &edit_like()).unwrap();
        assert_eq!(res.score, 0);
        assert_eq!(res.cells, 1);
    }

    #[test]
    fn matches_gotoh_small() {
        let q = [0u8, 1, 2, 3, 0, 1];
        let r = [0u8, 1, 3, 3, 0, 1, 2];
        let s = edit_like();
        let golden = dp_affine::affine_score(&q, &r, &s);
        assert_eq!(affine_wfa_score(&q, &r, &s).unwrap().score, golden);
    }

    #[test]
    fn general_transform_matches_gotoh() {
        let s = AffineScheme::minimap2(); // M = 2
        let q = [0u8, 1, 2, 3, 0, 1, 1, 2];
        let r = [0u8, 1, 3, 3, 0, 1, 2];
        let golden = dp_affine::affine_score(&q, &r, &s);
        assert_eq!(affine_wfa_score_general(&q, &r, &s).unwrap().score, golden);
    }

    #[test]
    fn work_scales_with_divergence() {
        let r: Vec<u8> = (0..1500u32).map(|i| (i.wrapping_mul(7) % 4) as u8).collect();
        let mut q = r.clone();
        q[700] ^= 1;
        let res = affine_wfa_score(&q, &r, &edit_like()).unwrap();
        assert!(res.cells < 200, "cells {}", res.cells);
        assert_eq!(res.score, -4);
    }

    #[test]
    fn nonzero_match_rejected_by_core_entry() {
        let s = AffineScheme::minimap2();
        assert!(affine_wfa_score(&[0], &[0], &s).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]
        #[test]
        fn matches_gotoh_random(
            q in proptest::collection::vec(0u8..4, 1..60),
            r in proptest::collection::vec(0u8..4, 1..60),
        ) {
            let s = edit_like();
            prop_assert_eq!(
                affine_wfa_score(&q, &r, &s).unwrap().score,
                dp_affine::affine_score(&q, &r, &s)
            );
        }

        #[test]
        fn general_matches_gotoh_random(
            q in proptest::collection::vec(0u8..4, 1..40),
            r in proptest::collection::vec(0u8..4, 1..40),
        ) {
            let s = AffineScheme::minimap2();
            prop_assert_eq!(
                affine_wfa_score_general(&q, &r, &s).unwrap().score,
                dp_affine::affine_score(&q, &r, &s)
            );
        }
    }
}
