//! Myers's blocked bit-parallel edit-distance algorithm (Myers 1999,
//! Hyyrö's blocked formulation — the core of Edlib, the paper's
//! edit-distance software reference [95]).
//!
//! Computes the global (Needleman–Wunsch) edit distance processing 64
//! DP-cells per machine word per text character: the strongest *software*
//! baseline for the DNA-edit configuration, complementary to the
//! KSW2-style SIMD model in `timing`.

use smx_align_core::AlignError;

const HIGH_BIT: u64 = 1 << 63;

/// Per-symbol match-bit masks for each 64-row block of the query.
struct PatternEq {
    blocks: usize,
    m: usize,
    /// `eq[symbol * blocks + block]`.
    eq: Vec<u64>,
}

impl PatternEq {
    fn new(query: &[u8], symbols: usize) -> PatternEq {
        let m = query.len();
        let blocks = m.div_ceil(64);
        let mut eq = vec![0u64; symbols * blocks];
        for (i, &c) in query.iter().enumerate() {
            eq[c as usize * blocks + i / 64] |= 1u64 << (i % 64);
        }
        PatternEq { blocks, m, eq }
    }

    fn mask(&self, symbol: u8, block: usize) -> u64 {
        self.eq[symbol as usize * self.blocks + block]
    }
}

/// One Myers block step (Edlib's `calculateBlock`): updates the vertical
/// delta words `(pv, mv)` for a block given the symbol mask and the
/// incoming horizontal delta `hin ∈ {-1, 0, +1}`; returns the outgoing
/// horizontal delta.
fn step(pv: &mut u64, mv: &mut u64, eq: u64, hin: i32) -> i32 {
    let mut eq = eq;
    if hin < 0 {
        eq |= 1;
    }
    let xv = eq | *mv;
    let xh = (((eq & *pv).wrapping_add(*pv)) ^ *pv) | eq;
    let mut ph = *mv | !(xh | *pv);
    let mut mh = *pv & xh;
    let hout = if ph & HIGH_BIT != 0 {
        1
    } else if mh & HIGH_BIT != 0 {
        -1
    } else {
        0
    };
    ph <<= 1;
    mh <<= 1;
    if hin < 0 {
        mh |= 1;
    } else if hin > 0 {
        ph |= 1;
    }
    *pv = mh | !(xv | ph);
    *mv = ph & xv;
    hout
}

/// Global edit distance via blocked bit-parallel DP.
///
/// `symbols` is the alphabet cardinality (codes must be `< symbols`).
///
/// # Errors
///
/// Returns [`AlignError::EmptySequence`] for empty inputs and
/// [`AlignError::InvalidCode`] for out-of-range codes.
pub fn edit_distance(query: &[u8], reference: &[u8], symbols: usize) -> Result<u32, AlignError> {
    if query.is_empty() || reference.is_empty() {
        return Err(AlignError::EmptySequence);
    }
    if let Some(&bad) = query.iter().chain(reference).find(|&&c| c as usize >= symbols) {
        return Err(AlignError::InvalidCode { code: bad, alphabet: "myers" });
    }
    let pat = PatternEq::new(query, symbols);
    let blocks = pat.blocks;
    let mut pv = vec![u64::MAX; blocks];
    let mut mv = vec![0u64; blocks];
    let m = pat.m;
    for &c in reference {
        let mut hin = 1i32; // global alignment: D[0][j] − D[0][j−1] = +1
        for b in 0..blocks {
            hin = step(&mut pv[b], &mut mv[b], pat.mask(c, b), hin);
        }
    }
    // After processing all of the reference, (Pv, Mv) hold the vertical
    // deltas of the final column: D[m][n] = D[0][n] + Σ_i Δv(i, n) and
    // D[0][n] = n for global alignment.
    let mut d: i64 = reference.len() as i64;
    for i in 0..m {
        let (b, bit) = (i / 64, 1u64 << (i % 64));
        if pv[b] & bit != 0 {
            d += 1;
        } else if mv[b] & bit != 0 {
            d -= 1;
        }
    }
    Ok(d as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use smx_align_core::dp;

    #[test]
    fn matches_golden_small() {
        let q = b"kitten".map(|c| c - b'a');
        let r = b"sitting".map(|c| c - b'a');
        assert_eq!(edit_distance(&q, &r, 26).unwrap(), 3);
    }

    #[test]
    fn identical_is_zero() {
        let q = vec![1u8; 100];
        assert_eq!(edit_distance(&q, &q, 4).unwrap(), 0);
    }

    #[test]
    fn exactly_64_rows() {
        let q: Vec<u8> = (0..64).map(|i| (i % 4) as u8).collect();
        let mut r = q.clone();
        r[10] ^= 1;
        r.remove(40);
        assert_eq!(edit_distance(&q, &r, 4).unwrap(), dp::edit_distance(&q, &r));
    }

    #[test]
    fn multi_block_lengths() {
        for m in [1usize, 63, 64, 65, 127, 128, 129, 200] {
            let q: Vec<u8> = (0..m as u32).map(|i| (i.wrapping_mul(7) % 4) as u8).collect();
            let r: Vec<u8> = (0..(m + 13) as u32).map(|i| (i.wrapping_mul(5) % 4) as u8).collect();
            assert_eq!(edit_distance(&q, &r, 4).unwrap(), dp::edit_distance(&q, &r), "m = {m}");
        }
    }

    #[test]
    fn rejects_bad_codes() {
        assert!(edit_distance(&[5], &[0], 4).is_err());
        assert!(edit_distance(&[], &[0], 4).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn matches_golden_random(
            q in proptest::collection::vec(0u8..4, 1..180),
            r in proptest::collection::vec(0u8..4, 1..180),
        ) {
            prop_assert_eq!(
                edit_distance(&q, &r, 4).unwrap(),
                dp::edit_distance(&q, &r)
            );
        }

        #[test]
        fn protein_alphabet_random(
            q in proptest::collection::vec(0u8..26, 1..100),
            r in proptest::collection::vec(0u8..26, 1..100),
        ) {
            prop_assert_eq!(
                edit_distance(&q, &r, 26).unwrap(),
                dp::edit_distance(&q, &r)
            );
        }
    }
}
