//! Myers's blocked bit-parallel edit-distance algorithm (Myers 1999,
//! Hyyrö's blocked formulation — the core of Edlib, the paper's
//! edit-distance software reference [95]).
//!
//! Computes the global (Needleman–Wunsch) edit distance processing 64
//! DP-cells per machine word per text character: the strongest *software*
//! baseline for the DNA-edit configuration, complementary to the
//! KSW2-style SIMD model in `timing`.

use smx_align_core::AlignError;

const HIGH_BIT: u64 = 1 << 63;

/// Per-symbol match-bit masks for each 64-row block of the query.
struct PatternEq {
    blocks: usize,
    m: usize,
    /// `eq[symbol * blocks + block]`.
    eq: Vec<u64>,
}

impl PatternEq {
    fn new(query: &[u8], symbols: usize) -> PatternEq {
        let m = query.len();
        let blocks = m.div_ceil(64);
        let mut eq = vec![0u64; symbols * blocks];
        for (i, &c) in query.iter().enumerate() {
            eq[c as usize * blocks + i / 64] |= 1u64 << (i % 64);
        }
        PatternEq { blocks, m, eq }
    }

    fn mask(&self, symbol: u8, block: usize) -> u64 {
        self.eq[symbol as usize * self.blocks + block]
    }
}

/// One Myers block step (Edlib's `calculateBlock`): updates the vertical
/// delta words `(pv, mv)` for a block given the symbol mask and the
/// incoming horizontal delta `hin ∈ {-1, 0, +1}`; returns the outgoing
/// horizontal delta.
fn step(pv: &mut u64, mv: &mut u64, eq: u64, hin: i32) -> i32 {
    // Edlib's canonical operation order: Xv is derived from the *raw*
    // match mask, before the incoming horizontal delta folds into bit 0 of
    // Eq for the Xh carry chain. (When hin < 0 the adjusted bit 0 is
    // masked out of the Pv'/Mv' update by the forced Mh bit below, so the
    // distinction is unobservable — but matching the reference ordering
    // keeps the high-bit carry reasoning auditable against Edlib.)
    let xv = eq | *mv;
    let mut eq = eq;
    if hin < 0 {
        eq |= 1;
    }
    let xh = (((eq & *pv).wrapping_add(*pv)) ^ *pv) | eq;
    let mut ph = *mv | !(xh | *pv);
    let mut mh = *pv & xh;
    let hout = if ph & HIGH_BIT != 0 {
        1
    } else if mh & HIGH_BIT != 0 {
        -1
    } else {
        0
    };
    ph <<= 1;
    mh <<= 1;
    if hin < 0 {
        mh |= 1;
    } else if hin > 0 {
        ph |= 1;
    }
    *pv = mh | !(xv | ph);
    *mv = ph & xv;
    hout
}

/// Global edit distance via blocked bit-parallel DP.
///
/// `symbols` is the alphabet cardinality (codes must be `< symbols`).
///
/// # Errors
///
/// Returns [`AlignError::EmptySequence`] for empty inputs and
/// [`AlignError::InvalidCode`] for out-of-range codes.
pub fn edit_distance(query: &[u8], reference: &[u8], symbols: usize) -> Result<u32, AlignError> {
    if query.is_empty() || reference.is_empty() {
        return Err(AlignError::EmptySequence);
    }
    if let Some(&bad) = query.iter().chain(reference).find(|&&c| c as usize >= symbols) {
        return Err(AlignError::InvalidCode { code: bad, alphabet: "myers" });
    }
    let pat = PatternEq::new(query, symbols);
    let blocks = pat.blocks;
    let mut pv = vec![u64::MAX; blocks];
    let mut mv = vec![0u64; blocks];
    let m = pat.m;
    for &c in reference {
        let mut hin = 1i32; // global alignment: D[0][j] − D[0][j−1] = +1
        for b in 0..blocks {
            hin = step(&mut pv[b], &mut mv[b], pat.mask(c, b), hin);
        }
    }
    // After processing all of the reference, (Pv, Mv) hold the vertical
    // deltas of the final column: D[m][n] = D[0][n] + Σ_i Δv(i, n) and
    // D[0][n] = n for global alignment.
    let mut d: i64 = reference.len() as i64;
    for i in 0..m {
        let (b, bit) = (i / 64, 1u64 << (i % 64));
        if pv[b] & bit != 0 {
            d += 1;
        } else if mv[b] & bit != 0 {
            d -= 1;
        }
    }
    Ok(d as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use smx_align_core::dp;

    #[test]
    fn matches_golden_small() {
        let q = b"kitten".map(|c| c - b'a');
        let r = b"sitting".map(|c| c - b'a');
        assert_eq!(edit_distance(&q, &r, 26).unwrap(), 3);
    }

    #[test]
    fn identical_is_zero() {
        let q = vec![1u8; 100];
        assert_eq!(edit_distance(&q, &q, 4).unwrap(), 0);
    }

    #[test]
    fn exactly_64_rows() {
        let q: Vec<u8> = (0..64).map(|i| (i % 4) as u8).collect();
        let mut r = q.clone();
        r[10] ^= 1;
        r.remove(40);
        assert_eq!(edit_distance(&q, &r, 4).unwrap(), dp::edit_distance(&q, &r));
    }

    #[test]
    fn multi_block_lengths() {
        for m in [1usize, 63, 64, 65, 127, 128, 129, 200] {
            let q: Vec<u8> = (0..m as u32).map(|i| (i.wrapping_mul(7) % 4) as u8).collect();
            let r: Vec<u8> = (0..(m + 13) as u32).map(|i| (i.wrapping_mul(5) % 4) as u8).collect();
            assert_eq!(edit_distance(&q, &r, 4).unwrap(), dp::edit_distance(&q, &r), "m = {m}");
        }
    }

    #[test]
    fn word_boundary_edit_at_block_seam() {
        // Pattern lengths straddling the 64-bit word boundary, with the
        // single edit placed exactly at the seam rows (63, 64, 65), so the
        // vertical-delta transfer between blocks is what carries the
        // distance. Each case must match the golden DP.
        for m in [63usize, 64, 65, 128] {
            let q: Vec<u8> = (0..m as u32).map(|i| (i % 4) as u8).collect();
            for edit_at in [0usize, 62, 63, 64, m - 1] {
                let edit_at = edit_at.min(m - 1);
                // Substitution at the seam.
                let mut r = q.clone();
                r[edit_at] ^= 1;
                assert_eq!(
                    edit_distance(&q, &r, 4).unwrap(),
                    dp::edit_distance(&q, &r),
                    "m={m} subst at {edit_at}"
                );
                // Deletion at the seam (reference one shorter).
                if m > 1 {
                    let mut r = q.clone();
                    r.remove(edit_at);
                    assert_eq!(
                        edit_distance(&q, &r, 4).unwrap(),
                        dp::edit_distance(&q, &r),
                        "m={m} del at {edit_at}"
                    );
                }
                // Insertion at the seam (reference one longer).
                let mut r = q.clone();
                r.insert(edit_at, 3);
                assert_eq!(
                    edit_distance(&q, &r, 4).unwrap(),
                    dp::edit_distance(&q, &r),
                    "m={m} ins at {edit_at}"
                );
            }
        }
    }

    #[test]
    fn word_boundary_high_bit_carry_stress() {
        // All-mismatch pairs maximize +1 horizontal deltas, driving the Ph
        // high bit (the inter-block carry) on every column; all-match tails
        // after a mismatch head drive the Mh high bit on the way back down.
        for m in [63usize, 64, 65, 128] {
            let q = vec![0u8; m];
            for n in [m - 1, m, m + 1, 2 * m] {
                let r = vec![1u8; n];
                assert_eq!(
                    edit_distance(&q, &r, 4).unwrap(),
                    dp::edit_distance(&q, &r),
                    "all-mismatch m={m} n={n}"
                );
            }
            // Mismatch head, match tail: the distance is decided by Mv bits
            // above the first block.
            let mut q2 = vec![2u8; m];
            let r2 = vec![3u8; m];
            for c in q2.iter_mut().skip(m / 2) {
                *c = 3;
            }
            assert_eq!(
                edit_distance(&q2, &r2, 4).unwrap(),
                dp::edit_distance(&q2, &r2),
                "half-mismatch m={m}"
            );
        }
    }

    #[test]
    fn step_preserves_delta_word_disjointness() {
        // Pv and Mv encode +1/−1 vertical deltas; a row can't be both, so
        // the words must stay disjoint through any step — the invariant the
        // blocked formulation's carry logic relies on.
        let mut pv = u64::MAX;
        let mut mv = 0u64;
        for (i, &(eq, hin)) in [
            (0u64, 1i32),
            (0x8000_0000_0000_0001, -1),
            (u64::MAX, 0),
            (0x5555_5555_5555_5555, 1),
            (0xAAAA_AAAA_AAAA_AAAA, -1),
        ]
        .iter()
        .enumerate()
        {
            let hout = step(&mut pv, &mut mv, eq, hin);
            assert!((-1..=1).contains(&hout), "round {i}");
            assert_eq!(pv & mv, 0, "Pv/Mv overlap after round {i}");
        }
    }

    #[test]
    fn rejects_bad_codes() {
        assert!(edit_distance(&[5], &[0], 4).is_err());
        assert!(edit_distance(&[], &[0], 4).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn matches_golden_random(
            q in proptest::collection::vec(0u8..4, 1..180),
            r in proptest::collection::vec(0u8..4, 1..180),
        ) {
            prop_assert_eq!(
                edit_distance(&q, &r, 4).unwrap(),
                dp::edit_distance(&q, &r)
            );
        }

        #[test]
        fn protein_alphabet_random(
            q in proptest::collection::vec(0u8..26, 1..100),
            r in proptest::collection::vec(0u8..26, 1..100),
        ) {
            prop_assert_eq!(
                edit_distance(&q, &r, 26).unwrap(),
                dp::edit_distance(&q, &r)
            );
        }
    }
}
