//! Anti-diagonal vectorized kernel.
//!
//! The row recurrence `M[i][j] = max(M[i-1][j-1]+s, M[i-1][j]+gi,
//! M[i][j-1]+gd)` carries a dependency along `j` (each cell needs its
//! left neighbour), which defeats vectorization. Re-indexing by
//! anti-diagonal `d = i + j` removes it: every cell of diagonal `d`
//! depends only on diagonals `d-1` and `d-2`, so the whole diagonal is
//! one independent element-wise pass —
//!
//! ```text
//! A_d[i] = max(A_{d-2}[i-1] + s(q[i-1], r[d-i-1]),   // diagonal
//!              A_{d-1}[i-1] + gi,                    // up (insert)
//!              A_{d-1}[i]   + gd)                    // left (delete)
//! ```
//!
//! with borders `A_d[0] = d·gd` (cell `(0, d)`, while `d ≤ n`) and
//! `A_d[d] = d·gi` (cell `(d, 0)`, while `d ≤ m`). The reference is
//! pre-reversed (`rrev[t] = r[n-1-t]`) so the diagonal's substitution
//! operands `r[d-i-1] = rrev[i+n-d]` load with forward unit stride, like
//! every other operand.
//!
//! The inner loop is written branchlessly over exact pre-sliced ranges so
//! LLVM auto-vectorizes it; on x86 the whole pass is additionally
//! instantiated under `#[target_feature(enable = "avx2")]` (function
//! multiversioning) and the wider instantiation is picked at runtime by
//! the dispatcher in [`super`]. Arithmetic is *wrapping* (saturating
//! lane ops don't vectorize); the dispatcher only routes here when the
//! no-overflow bound behind [`super::selected_kernel`] proves wrapping
//! and saturating arithmetic coincide, which makes this kernel
//! byte-identical to the scalar reference wherever both run.
//!
//! Stats ride along as one lockstep `u32` diagonal packing the winning
//! path's matches and query-insertions as `(matches << 16 |
//! gap_inserts)`, selected with the same golden tie-break as the scalar
//! kernel; both fields are bounded by the query length, and the dispatch
//! bound `m < 2^15` keeps the packing carry-free. The other two counts
//! are implied by the path shape.

use super::{finish, ScoreProfile, SimdWorkspace};
use smx_align_core::ScoringScheme;

/// Substitution scorer a kernel instantiation is specialized over.
trait SubScore: Copy {
    fn sub(&self, a: u8, b: u8) -> i32;

    /// Fills one diagonal's substitution scores; implementations may
    /// override with a vectorized pass.
    #[inline(always)]
    fn fill(&self, qs: &[u8], rs: &[u8], sv: &mut [i32]) {
        for t in 0..sv.len() {
            sv[t] = self.sub(qs[t], rs[t]);
        }
    }
}

/// Uniform match/mismatch scoring (Edit and Linear schemes).
#[derive(Clone, Copy)]
struct Uniform {
    matched: i32,
    differs: i32,
}

impl SubScore for Uniform {
    #[inline(always)]
    fn sub(&self, a: u8, b: u8) -> i32 {
        if a == b {
            self.matched
        } else {
            self.differs
        }
    }
}

/// Substitution-matrix scoring via a flattened power-of-two-stride copy
/// of the 26×26 table: `(a << 5 | b)` indexes a fixed 1024-entry array,
/// so the masked lookup needs no bounds check and stays a single load
/// (which LLVM can turn into a vector gather). Codes are `< 26` for any
/// validated [`smx_align_core::Sequence`]; out-of-range codes would read
/// a padding entry here where the scalar kernel's checked lookup panics.
#[derive(Clone, Copy)]
struct Table<'a> {
    flat: &'a [i32; 1024],
}

impl SubScore for Table<'_> {
    #[inline(always)]
    fn sub(&self, a: u8, b: u8) -> i32 {
        self.flat[((a as usize & 31) << 5) | (b as usize & 31)]
    }

    #[inline(always)]
    fn fill(&self, qs: &[u8], rs: &[u8], sv: &mut [i32]) {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        {
            if std::is_x86_feature_detected!("avx2") {
                // SAFETY: AVX2 support was just verified at runtime.
                unsafe { fill_gather(self.flat, qs, rs, sv) };
                return;
            }
        }
        for t in 0..sv.len() {
            sv[t] = self.sub(qs[t], rs[t]);
        }
    }
}

/// Table prefill with hardware gathers: eight (query, reference) byte
/// pairs widen to `i32` lanes, combine into masked `a << 5 | b` offsets
/// (all `< 1024`, the table length), and fetch in one `vpgatherdd`.
#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
// SAFETY: callers must verify AVX2 via is_x86_feature_detected!. Every
// gather offset is `(a & 31) << 5 | (b & 31)` and therefore < 1024, the
// exact length of `flat`, so the full-mask vpgatherdd stays in bounds.
unsafe fn fill_gather(flat: &[i32; 1024], qs: &[u8], rs: &[u8], sv: &mut [i32]) {
    #[cfg(target_arch = "x86")]
    use std::arch::x86::*;
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    let w = sv.len();
    let mask = _mm256_set1_epi32(31);
    let mut t = 0;
    while t + 8 <= w {
        // SAFETY: t + 8 <= w and qs/rs/sv all have length w, so every
        // 8-byte load and 32-byte store below stays in bounds; gather
        // offsets are masked to 0..1024, the exact table length.
        unsafe {
            let q8 = _mm_loadl_epi64(qs.as_ptr().add(t).cast());
            let r8 = _mm_loadl_epi64(rs.as_ptr().add(t).cast());
            let qi = _mm256_and_si256(_mm256_cvtepu8_epi32(q8), mask);
            let ri = _mm256_and_si256(_mm256_cvtepu8_epi32(r8), mask);
            let idx = _mm256_or_si256(_mm256_slli_epi32(qi, 5), ri);
            let v = _mm256_i32gather_epi32::<4>(flat.as_ptr(), idx);
            _mm256_storeu_si256(sv.as_mut_ptr().add(t).cast(), v);
        }
        t += 8;
    }
    while t < w {
        sv[t] = flat[((qs[t] as usize & 31) << 5) | (rs[t] as usize & 31)];
        t += 1;
    }
}

/// Score, path counts, and last-row contract produced by one kernel run.
#[derive(Debug, Clone, Copy)]
struct KernelOut {
    score: i32,
    cm: u32,
    ci: u32,
    best_score: i32,
    best_end: usize,
}

/// Anti-diagonal score+stats pass. Caller guarantees non-empty slices
/// and the no-overflow bound.
pub(crate) fn profile(
    query: &[u8],
    reference: &[u8],
    scheme: &ScoringScheme,
    ws: &mut SimdWorkspace,
) -> ScoreProfile {
    ws.rrev.clear();
    ws.rrev.extend(reference.iter().rev());
    let len = query.len() + 1;
    for buf in [&mut ws.d0, &mut ws.d1, &mut ws.d2] {
        buf.clear();
        buf.resize(len, 0);
    }
    for buf in [&mut ws.c0, &mut ws.c1, &mut ws.c2] {
        buf.clear();
        buf.resize(len, 0);
    }
    ws.subs.clear();
    ws.subs.resize(len, 0);
    ws.eqs.clear();
    ws.eqs.resize(len, 0);
    let (gi, gd) = (scheme.gap_insert(), scheme.gap_delete());
    let out = match scheme {
        ScoringScheme::Edit => dispatch(query, ws, gi, gd, Uniform { matched: 0, differs: -1 }),
        ScoringScheme::Linear { match_score, mismatch, .. } => {
            let sub = Uniform { matched: *match_score, differs: *mismatch };
            dispatch(query, ws, gi, gd, sub)
        }
        ScoringScheme::Matrix { matrix, .. } => {
            let mut flat = [0i32; 1024];
            for a in 0..26u8 {
                for b in 0..26u8 {
                    flat[((a as usize) << 5) | b as usize] = matrix.score(a, b);
                }
            }
            dispatch(query, ws, gi, gd, Table { flat: &flat })
        }
    };
    finish(query.len(), reference.len(), out.score, out.cm, out.ci, out.best_score, out.best_end)
}

fn dispatch<S: SubScore>(
    query: &[u8],
    ws: &mut SimdWorkspace,
    gi: i32,
    gd: i32,
    sub: S,
) -> KernelOut {
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    {
        if std::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime.
            return unsafe { run_avx2(query, ws, gi, gd, sub) };
        }
    }
    run_portable(query, ws, gi, gd, sub)
}

#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
// SAFETY: callers must verify AVX2 via is_x86_feature_detected! before
// dispatching here; the body itself is safe code that the attribute
// merely recompiles with AVX2 codegen enabled.
unsafe fn run_avx2<S: SubScore>(
    query: &[u8],
    ws: &mut SimdWorkspace,
    gi: i32,
    gd: i32,
    sub: S,
) -> KernelOut {
    run_body(query, ws, gi, gd, sub)
}

fn run_portable<S: SubScore>(
    query: &[u8],
    ws: &mut SimdWorkspace,
    gi: i32,
    gd: i32,
    sub: S,
) -> KernelOut {
    run_body(query, ws, gi, gd, sub)
}

/// The shared kernel body: identical source for both instantiations, so
/// the only difference is the ISA the compiler may use.
#[inline(always)]
fn run_body<S: SubScore>(
    query: &[u8],
    ws: &mut SimdWorkspace,
    gi: i32,
    gd: i32,
    sub: S,
) -> KernelOut {
    let m = query.len();
    let n = ws.rrev.len();
    let rrev: &[u8] = &ws.rrev;
    let (v0, v1, v2) = (&mut ws.d0, &mut ws.d1, &mut ws.d2);
    let (c0, c1, c2) = (&mut ws.c0, &mut ws.c1, &mut ws.c2);
    let (subs, eqs) = (&mut ws.subs, &mut ws.eqs);
    // The d = 0 diagonal lives in the "1" slot (already zeroed): cell
    // (0, 0) = 0 with zero counts.
    let mut best_row = i32::MIN;
    let mut best_end = 0usize;
    for d in 1..=(m + n) {
        let ilo = if d > n { d - n } else { 1 };
        let ihi = if d - 1 < m { d - 1 } else { m };
        if d <= n {
            v0[0] = (d as i32).wrapping_mul(gd);
            c0[0] = 0;
        }
        if d <= m {
            // Border cell (d, 0): d query insertions, zero matches.
            v0[d] = (d as i32).wrapping_mul(gi);
            c0[d] = d as u32;
        }
        if ilo <= ihi {
            let w = ihi - ilo + 1;
            // Exact operand windows: all loads and stores walk forward
            // with unit stride, which is what lets the loop vectorize.
            let qs = &query[ilo - 1..ilo - 1 + w];
            let rb = ilo + n - d;
            let rs = &rrev[rb..rb + w];
            let dgv = &v2[ilo - 1..ilo - 1 + w];
            let dgc = &c2[ilo - 1..ilo - 1 + w];
            let (upv, lfv) = (&v1[ilo - 1..ilo - 1 + w], &v1[ilo..ilo + w]);
            let (upc, lfc) = (&c1[ilo - 1..ilo - 1 + w], &c1[ilo..ilo + w]);
            let ov = &mut v0[ilo..ilo + w];
            let oc = &mut c0[ilo..ilo + w];
            let sv = &mut subs[..w];
            let ev = &mut eqs[..w];
            // Prefill pass: substitution scores and match flags widen the
            // byte operands once, so the DP loop below is purely 32-bit.
            // For matrix schemes this also keeps the table gather out of
            // the auto-vectorized loop (Table::fill uses hardware
            // gathers where available).
            sub.fill(qs, rs, sv);
            for t in 0..w {
                ev[t] = u32::from(qs[t] == rs[t]);
            }
            for t in 0..w {
                let diag = dgv[t].wrapping_add(sv[t]);
                let up = upv[t].wrapping_add(gi);
                let left = lfv[t].wrapping_add(gd);
                let best = diag.max(up).max(left);
                // Golden tie-break, branchless: diagonal ≻ up ≻ left.
                // Counters ride packed as (matches << 16 | gap_inserts);
                // both fields are < 2^15 (dispatch bound), so the +1 on
                // the insert field can never carry across.
                let d_win = diag >= up && diag >= left;
                let u_win = up >= left;
                let pk_d = dgc[t].wrapping_add(ev[t] << 16);
                let pk_g = if u_win { upc[t].wrapping_add(1) } else { lfc[t] };
                ov[t] = best;
                oc[t] = if d_win { pk_d } else { pk_g };
            }
        }
        // Last-needle-row contract: cell (m, d-m) is this diagonal's
        // entry of row m. Strictly-greater keeps the leftmost maximum.
        if d >= m {
            let v = v0[m];
            if v > best_row {
                best_row = v;
                best_end = d - m;
            }
        }
        // Rotate (A, B, C) -> (B, C, A): the oldest diagonal's storage
        // is reused for the next one.
        std::mem::swap(v2, v1);
        std::mem::swap(v1, v0);
        std::mem::swap(c2, c1);
        std::mem::swap(c1, c0);
    }
    // After the final rotation the d = m+n diagonal sits in the "1" slot.
    let packed = c1[m];
    KernelOut {
        score: v1[m],
        cm: packed >> 16,
        ci: packed & 0xFFFF,
        best_score: best_row,
        best_end,
    }
}
