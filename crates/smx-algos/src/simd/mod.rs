//! Streaming SIMD score+stats kernel for the software baseline
//! (ROADMAP item 1; DESIGN.md §7).
//!
//! Every resilience path in the service layer (breaker reroute, hedged
//! backup, audit recompute, whole-alignment degradation) lands on the
//! software baseline, so its speed multiplies service throughput under
//! any fault load. This module provides the cheap half of a **two-phase
//! contract**: a streaming dynamic program over rolling state that
//! produces the optimal score, the best last-row score and end position,
//! and the match/mismatch/gap counts of the optimal path — with **no
//! matrix and no traceback pass**. The expensive half (a full CIGAR via
//! [`smx_align_core::dp::align_codes`]) runs only for winners or when an
//! audit disagrees.
//!
//! Two interchangeable kernels sit behind [`score_profile`]:
//!
//! - [`scalar`]: a row-streaming reference that mirrors
//!   [`smx_align_core::dp::last_row`] operation-for-operation (saturating
//!   arithmetic included), so its score is byte-identical to
//!   [`smx_align_core::dp::score_only`] on *every* input.
//! - [`wavefront`]: an anti-diagonal (wavefront) formulation whose inner
//!   loop has no loop-carried dependency, written branchlessly over
//!   contiguous slices so LLVM auto-vectorizes it; on x86 it is
//!   instantiated twice (baseline ISA and AVX2) and selected at runtime.
//!
//! The vectorized kernel uses wrapping arithmetic (saturating ops do not
//! vectorize); it is only dispatched when a conservative no-overflow
//! bound proves wrapping and saturating arithmetic coincide, so both
//! kernels are byte-identical wherever both run. Pathological schemes
//! (|penalty| ~ 1e9) fall back to the scalar kernel automatically.
//!
//! The per-cell winner selection (diagonal ≻ up ≻ left) replicates the
//! golden traceback tie-break, so the reported counts equal
//! `align_codes(..).cigar.stats()` exactly — the streaming pass and the
//! full DP agree not just on the score but on the shape of the optimal
//! path.

mod scalar;
mod wavefront;

use smx_align_core::ScoringScheme;
use std::sync::OnceLock;

/// Which kernel services score-only baseline work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Baseline {
    /// The row-streaming scalar reference (saturating arithmetic).
    Scalar,
    /// The vectorized anti-diagonal kernel. Falls back to [`Baseline::Scalar`]
    /// only when the no-overflow bound fails (correctness, not policy).
    Simd,
    /// Runtime selection: the vectorized kernel when it is safe, the scalar
    /// reference otherwise. Honours the `SMX_FORCE_SCALAR` environment
    /// variable (any value but `0`) so CI can pin the fallback path.
    #[default]
    Auto,
}

impl Baseline {
    /// All baselines, for CLI parsing and sweeps.
    pub const ALL: [Baseline; 3] = [Baseline::Scalar, Baseline::Simd, Baseline::Auto];

    /// Stable CLI name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Baseline::Scalar => "scalar",
            Baseline::Simd => "simd",
            Baseline::Auto => "auto",
        }
    }

    /// Parses a CLI name.
    #[must_use]
    pub fn parse(name: &str) -> Option<Baseline> {
        Baseline::ALL.into_iter().find(|b| b.name() == name)
    }
}

impl std::fmt::Display for Baseline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The kernel a `(baseline, scheme, lengths)` combination resolves to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Row-streaming scalar reference.
    Scalar,
    /// Anti-diagonal kernel, baseline-ISA instantiation.
    SimdPortable,
    /// Anti-diagonal kernel, AVX2 instantiation.
    SimdAvx2,
}

impl KernelKind {
    /// Human-readable name for harness reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Scalar => "scalar",
            KernelKind::SimdPortable => "simd-portable",
            KernelKind::SimdAvx2 => "simd-avx2",
        }
    }
}

/// Everything the streaming pass produces: the full-DP score, the
/// last-needle-row contract, and the optimal path's operation counts.
///
/// The scoring contract follows the frizbee-style full-needle convention
/// (SNIPPETS.md): in addition to the global score `M[m][n]`,
/// `best_score` is the maximum over the last needle (query) row
/// `M[m][0..=n]` and `best_end` the *leftmost* reference position
/// attaining it — the natural prefix-alignment end position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScoreProfile {
    /// Global alignment score `M[m][n]` (byte-identical to
    /// [`dp::score_only`]).
    pub score: i32,
    /// `max_j M[m][j]`: the best score over the last query row.
    pub best_score: i32,
    /// Leftmost `j` attaining `best_score`.
    pub best_end: usize,
    /// Matched positions on the optimal (golden tie-break) path.
    pub matches: u64,
    /// Mismatched positions on the optimal path.
    pub mismatches: u64,
    /// Inserted query characters on the optimal path.
    pub gap_inserts: u64,
    /// Deleted reference characters on the optimal path.
    pub gap_deletes: u64,
    /// DP cells the streaming pass covered (`m·n`).
    pub cells: u64,
}

/// Reusable buffers for the streaming kernels; steady-state calls are
/// allocation-free once capacity has grown to the workload's sizes.
#[derive(Debug, Clone, Default)]
pub struct SimdWorkspace {
    // Scalar kernel: one rolling row of scores plus lockstep counters.
    pub(crate) row: Vec<i32>,
    pub(crate) row_cm: Vec<u32>,
    pub(crate) row_ci: Vec<u32>,
    // Wavefront kernel: three rolling anti-diagonals of scores plus one
    // packed (matches << 16 | gap_inserts) counter diagonal each, and the
    // reversed reference.
    pub(crate) d0: Vec<i32>,
    pub(crate) d1: Vec<i32>,
    pub(crate) d2: Vec<i32>,
    pub(crate) c0: Vec<u32>,
    pub(crate) c1: Vec<u32>,
    pub(crate) c2: Vec<u32>,
    pub(crate) rrev: Vec<u8>,
    // Per-diagonal substitution scores and match flags, prefilled so the
    // hot loop is purely 32-bit elementwise (no byte widening, and no
    // table gather in the vector path for matrix schemes).
    pub(crate) subs: Vec<i32>,
    pub(crate) eqs: Vec<u32>,
}

impl SimdWorkspace {
    /// A fresh workspace (buffers grow on first use).
    #[must_use]
    pub fn new() -> SimdWorkspace {
        SimdWorkspace::default()
    }
}

/// Whether `SMX_FORCE_SCALAR` pins [`Baseline::Auto`] to the scalar
/// kernel (checked once per process).
#[must_use]
pub fn force_scalar() -> bool {
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| std::env::var("SMX_FORCE_SCALAR").is_ok_and(|v| v != "0"))
}

/// Whether the AVX2 instantiation of the vectorized kernel is available
/// on this host.
#[must_use]
pub fn avx2_available() -> bool {
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    {
        std::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
    {
        false
    }
}

/// Conservative no-overflow bound: every intermediate of the wrapping
/// kernel stays within `±(m+n+2)·max|score|`, so requiring that product
/// to fit in half the `i32` range proves wrapping == saturating.
fn fits_wrapping(scheme: &ScoringScheme, m: usize, n: usize) -> bool {
    let maxabs = [scheme.s_min(), scheme.s_max(), scheme.gap_insert(), scheme.gap_delete()]
        .into_iter()
        .map(|v| i64::from(v).unsigned_abs())
        .max()
        .unwrap_or(1)
        .max(1);
    let span = m as u64 + n as u64 + 2;
    span.checked_mul(maxabs).is_some_and(|v| v <= (i32::MAX as u64) / 2)
}

/// The kernel `score_profile` will run for this combination — exposed so
/// harnesses can report (and tests can pin) the dispatch decision.
#[must_use]
pub fn selected_kernel(
    baseline: Baseline,
    scheme: &ScoringScheme,
    m: usize,
    n: usize,
) -> KernelKind {
    // The wavefront kernel packs its two path counters into one u32 as
    // (matches << 16 | gap_inserts); both are bounded by the query length,
    // so m < 2^15 keeps the low field carry-free even after a +1.
    let simd_ok = fits_wrapping(scheme, m, n) && m > 0 && n > 0 && m < (1 << 15);
    let vectorized = match baseline {
        Baseline::Scalar => false,
        Baseline::Simd => simd_ok,
        Baseline::Auto => simd_ok && !force_scalar(),
    };
    if !vectorized {
        KernelKind::Scalar
    } else if avx2_available() {
        KernelKind::SimdAvx2
    } else {
        KernelKind::SimdPortable
    }
}

/// Runs the streaming score+stats pass over raw code slices.
///
/// Byte-identical to the golden model on every input and baseline:
/// `score == dp::score_only(q, r, scheme)`, `(best_score, best_end) ==
/// dp::last_row_best(&dp::last_row(q, r, scheme))`, and the counts equal
/// `dp::align_codes(q, r, scheme).cigar.stats()`.
pub fn score_profile(
    query: &[u8],
    reference: &[u8],
    scheme: &ScoringScheme,
    baseline: Baseline,
    ws: &mut SimdWorkspace,
) -> ScoreProfile {
    let (m, n) = (query.len(), reference.len());
    if m == 0 || n == 0 {
        return degenerate(m, n, scheme);
    }
    match selected_kernel(baseline, scheme, m, n) {
        KernelKind::Scalar => scalar::profile(query, reference, scheme, ws),
        KernelKind::SimdPortable | KernelKind::SimdAvx2 => {
            wavefront::profile(query, reference, scheme, ws)
        }
    }
}

/// Convenience wrapper for one-shot calls (owns a workspace).
#[must_use]
pub fn score_streaming(
    query: &[u8],
    reference: &[u8],
    scheme: &ScoringScheme,
    baseline: Baseline,
) -> i32 {
    score_profile(query, reference, scheme, baseline, &mut SimdWorkspace::new()).score
}

/// Closed-form profile for empty inputs (mirrors the golden model's
/// border initialization, saturating arithmetic included).
fn degenerate(m: usize, n: usize, scheme: &ScoringScheme) -> ScoreProfile {
    if m == 0 {
        // The whole reference is deleted; the last row is row 0, whose
        // maximum sits at j = 0 with value 0 (gap penalties are negative).
        ScoreProfile {
            score: (n as i32).saturating_mul(scheme.gap_delete()),
            best_score: 0,
            best_end: 0,
            gap_deletes: n as u64,
            ..ScoreProfile::default()
        }
    } else {
        // n == 0: the whole query is inserted; the last row is the single
        // border cell M[m][0].
        let score = (m as i32).saturating_mul(scheme.gap_insert());
        ScoreProfile {
            score,
            best_score: score,
            best_end: 0,
            gap_inserts: m as u64,
            ..ScoreProfile::default()
        }
    }
}

/// Assembles a profile from the two tracked counters; the remaining two
/// counts are implied by the path shape (`cm + cx + ci = m`,
/// `cm + cx + cd = n`).
pub(crate) fn finish(
    m: usize,
    n: usize,
    score: i32,
    cm: u32,
    ci: u32,
    best_score: i32,
    best_end: usize,
) -> ScoreProfile {
    let (cm, ci) = (u64::from(cm), u64::from(ci));
    ScoreProfile {
        score,
        best_score,
        best_end,
        matches: cm,
        mismatches: m as u64 - cm - ci,
        gap_inserts: ci,
        gap_deletes: n as u64 + ci - m as u64,
        cells: m as u64 * n as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use smx_align_core::{dp, SubstMatrix};

    fn schemes() -> Vec<(&'static str, ScoringScheme)> {
        vec![
            ("edit", ScoringScheme::edit()),
            ("ksw2", ScoringScheme::linear(2, -4, -4).unwrap()),
            ("asym", ScoringScheme::linear_asym(1, -3, -2, -5).unwrap()),
            ("zero-match", ScoringScheme::linear(0, -2, -3).unwrap()),
            ("blosum62", ScoringScheme::matrix(SubstMatrix::blosum62(), -5).unwrap()),
        ]
    }

    /// Asserts the full byte-identity contract of both kernels on one pair.
    fn check(q: &[u8], r: &[u8], scheme: &ScoringScheme) {
        let mut ws = SimdWorkspace::new();
        let scalar = score_profile(q, r, scheme, Baseline::Scalar, &mut ws);
        let simd = score_profile(q, r, scheme, Baseline::Simd, &mut ws);
        let auto = score_profile(q, r, scheme, Baseline::Auto, &mut ws);
        assert_eq!(scalar, simd, "kernels must be byte-identical");
        assert_eq!(scalar, auto, "auto must match");
        assert_eq!(scalar.score, dp::score_only(q, r, scheme), "global score");
        let row = dp::last_row(q, r, scheme);
        assert_eq!((scalar.best_score, scalar.best_end), dp::last_row_best(&row), "contract");
        let golden = dp::align_codes(q, r, scheme);
        assert_eq!(scalar.score, golden.score);
        let stats = golden.cigar.stats();
        assert_eq!(scalar.matches, stats.matches, "matches");
        assert_eq!(scalar.mismatches, stats.mismatches, "mismatches");
        assert_eq!(scalar.gap_inserts, stats.insertions, "inserts");
        assert_eq!(scalar.gap_deletes, stats.deletions, "deletes");
    }

    #[test]
    fn empty_and_degenerate_sequences() {
        for (_, scheme) in schemes() {
            check(&[], &[], &scheme);
            check(&[], &[0, 1, 2], &scheme);
            check(&[0, 1], &[], &scheme);
            check(&[1], &[1], &scheme);
            check(&[1], &[2], &scheme);
            check(&[0], &[0, 0, 0, 0], &scheme);
        }
    }

    #[test]
    fn identical_and_disjoint_pairs() {
        for (_, scheme) in schemes() {
            let q: Vec<u8> = (0..257u32).map(|i| (i % 4) as u8).collect();
            check(&q, &q, &scheme);
            let r: Vec<u8> = vec![5u8; 97];
            check(&q, &r, &scheme);
            check(&r, &q, &scheme);
        }
    }

    #[test]
    fn full_512_boundary() {
        // The satellite's upper bound, plus off-by-one neighbours around
        // likely vector-width boundaries.
        let scheme = ScoringScheme::linear(2, -4, -4).unwrap();
        for (m, n) in [(512, 512), (511, 513), (8, 512), (512, 8), (63, 65), (64, 64)] {
            let q: Vec<u8> = (0..m as u32).map(|i| ((i * 7 + (i >> 4)) % 4) as u8).collect();
            let r: Vec<u8> = (0..n as u32).map(|i| ((i * 5) % 4) as u8).collect();
            check(&q, &r, &scheme);
        }
    }

    #[test]
    fn pathological_penalties_fall_back_to_scalar_saturating() {
        // |penalty| ~ 1e9 saturates the golden model; the dispatcher must
        // refuse the wrapping kernel and stay byte-identical anyway.
        let scheme = ScoringScheme::linear(1, -1_000_000_000, -1_000_000_000).unwrap();
        let (m, n) = (300usize, 200usize);
        assert_eq!(selected_kernel(Baseline::Simd, &scheme, m, n), KernelKind::Scalar);
        let q = vec![0u8; m];
        let r = vec![1u8; n];
        let mut ws = SimdWorkspace::new();
        let p = score_profile(&q, &r, &scheme, Baseline::Simd, &mut ws);
        assert_eq!(p.score, dp::score_only(&q, &r, &scheme));
    }

    #[test]
    fn dispatch_reports_kernels() {
        let scheme = ScoringScheme::edit();
        assert_eq!(selected_kernel(Baseline::Scalar, &scheme, 10, 10), KernelKind::Scalar);
        let simd = selected_kernel(Baseline::Simd, &scheme, 10, 10);
        assert_ne!(simd, KernelKind::Scalar);
        if avx2_available() {
            assert_eq!(simd, KernelKind::SimdAvx2);
        }
    }

    #[test]
    fn baseline_names_roundtrip() {
        for b in Baseline::ALL {
            assert_eq!(Baseline::parse(b.name()), Some(b));
        }
        assert_eq!(Baseline::parse("vector"), None);
        assert_eq!(Baseline::default(), Baseline::Auto);
    }

    #[test]
    fn workspace_reuse_is_allocation_stable() {
        // Steady state: a second identical call must not regrow buffers.
        let scheme = ScoringScheme::edit();
        let q = vec![1u8; 200];
        let r = vec![2u8; 180];
        let mut ws = SimdWorkspace::new();
        let first = score_profile(&q, &r, &scheme, Baseline::Simd, &mut ws);
        let caps = (ws.d0.capacity(), ws.c0.capacity(), ws.rrev.capacity());
        let second = score_profile(&q, &r, &scheme, Baseline::Simd, &mut ws);
        assert_eq!(first, second);
        assert_eq!(caps, (ws.d0.capacity(), ws.c0.capacity(), ws.rrev.capacity()));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn kernels_match_golden_dna(
            q in proptest::collection::vec(0u8..4, 0..300),
            r in proptest::collection::vec(0u8..4, 0..300),
        ) {
            for (_, scheme) in schemes() {
                check(&q, &r, &scheme);
            }
        }

        #[test]
        fn kernels_match_golden_protein(
            q in proptest::collection::vec(0u8..26, 0..160),
            r in proptest::collection::vec(0u8..26, 0..160),
        ) {
            let scheme = ScoringScheme::matrix(SubstMatrix::blosum50(), -5).unwrap();
            check(&q, &r, &scheme);
        }

        #[test]
        fn kernels_match_golden_ascii_long(
            q in proptest::collection::vec(0u8..96, 0..512),
            r in proptest::collection::vec(0u8..96, 0..512),
        ) {
            // Length range up to the satellite's 512 bound on one scheme
            // (full-matrix golden keeps the runtime reasonable).
            let scheme = ScoringScheme::linear(1, -1, -2).unwrap();
            check(&q, &r, &scheme);
        }
    }
}
