//! Row-streaming scalar reference kernel.
//!
//! Mirrors [`smx_align_core::dp::last_row`] operation-for-operation —
//! same rolling-row recurrence, same saturating arithmetic, same border
//! initialization — with two lockstep `u32` companions per cell that
//! count matches and query-insertions along the winning path. The winner
//! selection uses the golden traceback tie-break (diagonal ≻ up ≻ left),
//! so the counts reconstruct exactly the path
//! [`smx_align_core::dp::traceback`] would walk, without materializing a
//! matrix.
//!
//! Saturating arithmetic makes this kernel total: it is the fallback for
//! schemes whose magnitudes fail the wrapping kernel's no-overflow bound.

use super::{finish, ScoreProfile, SimdWorkspace};
use smx_align_core::{dp, ScoringScheme};

/// Streaming score+stats over one rolling row. Caller guarantees both
/// slices are non-empty.
pub(crate) fn profile(
    query: &[u8],
    reference: &[u8],
    scheme: &ScoringScheme,
    ws: &mut SimdWorkspace,
) -> ScoreProfile {
    let (m, n) = (query.len(), reference.len());
    let (gi, gd) = (scheme.gap_insert(), scheme.gap_delete());

    ws.row.clear();
    ws.row.extend((0..=n as i32).map(|j| j.saturating_mul(gd)));
    ws.row_cm.clear();
    ws.row_cm.resize(n + 1, 0);
    ws.row_ci.clear();
    ws.row_ci.resize(n + 1, 0);

    for (i, &qc) in query.iter().enumerate() {
        let mut prev_diag = ws.row[0];
        let mut prev_cm = ws.row_cm[0];
        let mut prev_ci = ws.row_ci[0];
        ws.row[0] = (i as i32 + 1).saturating_mul(gi);
        ws.row_cm[0] = 0;
        ws.row_ci[0] = i as u32 + 1;
        for j in 1..=n {
            let rc = reference[j - 1];
            let diag = prev_diag.saturating_add(scheme.score(qc, rc));
            let up = ws.row[j].saturating_add(gi);
            let left = ws.row[j - 1].saturating_add(gd);
            let best = diag.max(up).max(left);
            // Golden tie-break: diagonal ≻ up (insert) ≻ left (delete).
            let (cm, ci) = if diag >= up && diag >= left {
                (prev_cm.wrapping_add(u32::from(qc == rc)), prev_ci)
            } else if up >= left {
                (ws.row_cm[j], ws.row_ci[j].wrapping_add(1))
            } else {
                (ws.row_cm[j - 1], ws.row_ci[j - 1])
            };
            prev_diag = ws.row[j];
            prev_cm = ws.row_cm[j];
            prev_ci = ws.row_ci[j];
            ws.row[j] = best;
            ws.row_cm[j] = cm;
            ws.row_ci[j] = ci;
        }
    }

    let (best_score, best_end) = dp::last_row_best(&ws.row);
    finish(m, n, ws.row[n], ws.row_cm[n], ws.row_ci[n], best_score, best_end)
}
