//! The GACT-style window heuristic (paper §11, Fig. 14 "(W)"): align a
//! `W × W` window, keep the path up to an overlap margin, re-anchor, and
//! repeat. Fast and memory-light, but the greedy window commits to a path
//! that can diverge from the global optimum — the recall collapse the
//! paper demonstrates on ONT reads.

use crate::metrics::AlgoOutcome;
use smx_align_core::{dp, Cigar, Op, ScoringScheme};

/// Paper window size (Darwin/GACT configuration, §11).
pub const GACT_W: usize = 320;
/// Paper window overlap.
pub const GACT_O: usize = 128;

/// Runs the window heuristic with window `w` and overlap `o`.
///
/// # Panics
///
/// Panics if `o >= w` (the window would never advance).
#[must_use]
pub fn window_align(
    query: &[u8],
    reference: &[u8],
    scheme: &ScoringScheme,
    w: usize,
    o: usize,
    want_alignment: bool,
) -> AlgoOutcome {
    assert!(o < w, "overlap must be smaller than the window");
    let (m, n) = (query.len(), reference.len());
    let mut out = AlgoOutcome::new();
    out.pack_chars = (m + n) as u64;
    out.cells_stored = (w * w) as u64;
    let mut cigar = Cigar::new();
    let (mut i, mut j) = (0usize, 0usize);

    loop {
        if i == m {
            cigar.push_run(Op::Delete, (n - j) as u32);
            break;
        }
        if j == n {
            cigar.push_run(Op::Insert, (m - i) as u32);
            break;
        }
        let wi = w.min(m - i);
        let wj = w.min(n - j);
        let q_seg = &query[i..i + wi];
        let r_seg = &reference[j..j + wj];
        let aln = dp::align_codes(q_seg, r_seg, scheme);
        out.cells_computed += (wi * wj) as u64;
        out.blocks.push((wi, wj));
        let last_window = i + wi == m && j + wj == n;
        if last_window {
            cigar.extend_from(&aln.cigar);
            break;
        }
        // Keep the path prefix until w − o of either side is consumed.
        let (keep_q, keep_r) = (wi.saturating_sub(o).max(1), wj.saturating_sub(o).max(1));
        let (mut dq, mut dr) = (0usize, 0usize);
        for op in aln.cigar.iter_ops() {
            if dq >= keep_q || dr >= keep_r {
                break;
            }
            cigar.push(op);
            if op.consumes_query() {
                dq += 1;
            }
            if op.consumes_reference() {
                dr += 1;
            }
        }
        debug_assert!(dq > 0 || dr > 0, "window made no progress");
        i += dq;
        j += dr;
    }

    out.traceback_steps = cigar.len() as u64;
    let score =
        cigar.score(query, reference, scheme).expect("window cigar consumes both sequences");
    out.score = Some(score);
    if want_alignment {
        out.alignment = Some(smx_align_core::Alignment { score, cigar });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dna(len: usize, stride: u32) -> Vec<u8> {
        (0..len as u32).map(|i| ((i * stride + (i >> 6)) % 4) as u8).collect()
    }

    #[test]
    fn single_window_is_optimal() {
        let q = dna(100, 7);
        let r = dna(90, 5);
        let scheme = ScoringScheme::edit();
        let out = window_align(&q, &r, &scheme, 320, 128, true);
        assert_eq!(out.score, Some(dp::score_only(&q, &r, &scheme)));
        out.alignment.unwrap().verify(&q, &r, &scheme).unwrap();
    }

    #[test]
    fn low_error_long_sequences_stay_optimal() {
        let r = dna(900, 7);
        let mut q = r.clone();
        q[300] ^= 1; // one substitution
        let scheme = ScoringScheme::edit();
        let out = window_align(&q, &r, &scheme, 320, 128, false);
        assert_eq!(out.score, Some(dp::score_only(&q, &r, &scheme)));
        assert!(out.blocks.len() > 1, "needs several windows");
    }

    #[test]
    fn large_indel_defeats_the_window() {
        // A deletion larger than the window pushes the global optimum
        // beyond what greedy windows can recover.
        let r = dna(1500, 7);
        let mut q = r[..200].to_vec();
        q.extend_from_slice(&r[800..]); // 600-base deletion > W
        let scheme = ScoringScheme::edit();
        let out = window_align(&q, &r, &scheme, 320, 128, false);
        let golden = dp::score_only(&q, &r, &scheme);
        assert!(out.score.unwrap() < golden, "window should be suboptimal");
    }

    #[test]
    fn cigar_always_consumes_everything() {
        let q = dna(777, 11);
        let r = dna(701, 13);
        let scheme = ScoringScheme::linear(2, -4, -4).unwrap();
        let out = window_align(&q, &r, &scheme, 128, 32, true);
        let aln = out.alignment.unwrap();
        assert_eq!(aln.cigar.query_len(), q.len());
        assert_eq!(aln.cigar.reference_len(), r.len());
    }

    #[test]
    #[should_panic(expected = "overlap must be smaller")]
    fn overlap_must_be_smaller_than_window() {
        let _ = window_align(&[0], &[0], &ScoringScheme::edit(), 8, 8, false);
    }
}
