//! Semi-global ("glocal") alignment golden model: the read-mapping
//! formulation the paper's motivating pipelines (BWA, Minimap2, Bowtie2)
//! use — the query must align end-to-end while the reference may be
//! entered and left anywhere for free.

use crate::cigar::{Cigar, Op};
use crate::error::AlignError;
use crate::scoring::ScoringScheme;

/// A semi-global alignment: the query placed inside the reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemiglobalAlignment {
    /// Optimal score (query end-to-end, reference flanks free).
    pub score: i32,
    /// The reference segment the query aligned to (half-open).
    pub reference_range: std::ops::Range<usize>,
    /// Operations over the aligned segment (consumes the whole query).
    pub cigar: Cigar,
}

/// Computes the optimal semi-global alignment.
///
/// # Errors
///
/// Returns [`AlignError::EmptySequence`] for empty inputs.
pub fn semiglobal_align(
    query: &[u8],
    reference: &[u8],
    scheme: &ScoringScheme,
) -> Result<SemiglobalAlignment, AlignError> {
    if query.is_empty() || reference.is_empty() {
        return Err(AlignError::EmptySequence);
    }
    let (m, n) = (query.len(), reference.len());
    let w = n + 1;
    let (gi, gd) = (scheme.gap_insert(), scheme.gap_delete());
    let mut h = vec![0i32; (m + 1) * w];
    // Row 0 free (reference prefix skipped); column 0 pays insertions.
    for i in 1..=m {
        h[i * w] = i as i32 * gi;
        for j in 1..=n {
            h[i * w + j] = (h[(i - 1) * w + j - 1] + scheme.score(query[i - 1], reference[j - 1]))
                .max(h[(i - 1) * w + j] + gi)
                .max(h[i * w + j - 1] + gd);
        }
    }
    // Best end anywhere on the last row (reference suffix skipped).
    let (end_j, &score) = h[m * w..]
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
        .expect("last row non-empty");

    // Traceback to row 0.
    let (mut i, mut j) = (m, end_j);
    let mut cigar = Cigar::new();
    while i > 0 {
        let here = h[i * w + j];
        if j > 0 && here == h[(i - 1) * w + j - 1] + scheme.score(query[i - 1], reference[j - 1]) {
            cigar.push(if query[i - 1] == reference[j - 1] { Op::Match } else { Op::Mismatch });
            i -= 1;
            j -= 1;
        } else if here == h[(i - 1) * w + j] + gi {
            cigar.push(Op::Insert);
            i -= 1;
        } else if j > 0 && here == h[i * w + j - 1] + gd {
            cigar.push(Op::Delete);
            j -= 1;
        } else {
            return Err(AlignError::Internal(format!("broken semiglobal traceback at ({i}, {j})")));
        }
    }
    cigar.reverse();
    Ok(SemiglobalAlignment { score, reference_range: j..end_j, cigar })
}

/// Score-only semi-global alignment in `O(n)` memory.
#[must_use]
pub fn semiglobal_score(query: &[u8], reference: &[u8], scheme: &ScoringScheme) -> i32 {
    let n = reference.len();
    let (gi, gd) = (scheme.gap_insert(), scheme.gap_delete());
    let mut row = vec![0i32; n + 1];
    for (i, &q) in query.iter().enumerate() {
        let mut diag = row[0];
        row[0] = (i as i32 + 1) * gi;
        for j in 1..=n {
            let v =
                (diag + scheme.score(q, reference[j - 1])).max(row[j] + gi).max(row[j - 1] + gd);
            diag = row[j];
            row[j] = v;
        }
    }
    row.into_iter().max().expect("non-empty row")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn scheme() -> ScoringScheme {
        ScoringScheme::linear(2, -4, -4).unwrap()
    }

    #[test]
    fn read_embedded_in_reference() {
        // Query equals reference[5..13] of an aperiodic reference.
        let r: Vec<u8> = vec![3, 3, 3, 3, 3, 0, 1, 0, 2, 1, 3, 0, 2, 3, 3, 3, 3, 3, 3, 3];
        let q = r[5..13].to_vec();
        let a = semiglobal_align(&q, &r, &scheme()).unwrap();
        assert_eq!(a.score, 16); // 8 matches
        assert_eq!(a.reference_range, 5..13);
        assert_eq!(a.cigar.to_string(), "8=");
    }

    #[test]
    fn semiglobal_at_least_global() {
        let q = [0u8, 1, 2, 3];
        let r = [3u8, 0, 1, 2, 3, 2];
        let s = scheme();
        assert!(semiglobal_score(&q, &r, &s) >= crate::dp::score_only(&q, &r, &s));
    }

    #[test]
    fn query_must_be_consumed() {
        let q = [0u8, 1, 2];
        let r = [3u8; 10];
        let a = semiglobal_align(&q, &r, &scheme()).unwrap();
        assert_eq!(a.cigar.query_len(), 3);
    }

    #[test]
    fn score_only_matches_full() {
        let q = [0u8, 1, 2, 3, 0, 1];
        let r = [2u8, 3, 0, 1, 2, 3, 0, 1, 3];
        let s = scheme();
        assert_eq!(semiglobal_score(&q, &r, &s), semiglobal_align(&q, &r, &s).unwrap().score);
    }

    #[test]
    fn segment_rescores() {
        let q = [0u8, 1, 2, 3, 0];
        let r = [3u8, 3, 0, 1, 3, 3, 0, 2];
        let s = scheme();
        let a = semiglobal_align(&q, &r, &s).unwrap();
        let seg = &r[a.reference_range.clone()];
        assert_eq!(a.cigar.score(&q, seg, &s).unwrap(), a.score);
    }

    #[test]
    fn degenerate_inputs_yield_typed_errors_or_defined_results() {
        let s = scheme();
        assert!(matches!(semiglobal_align(&[], &[0], &s), Err(AlignError::EmptySequence)));
        assert!(matches!(semiglobal_align(&[0], &[], &s), Err(AlignError::EmptySequence)));
        // A single-symbol query placed on its match in the reference.
        let a = semiglobal_align(&[2], &[0, 2, 1], &s).unwrap();
        assert_eq!(a.score, 2);
        assert_eq!(a.cigar.to_string(), "1=");
        // query == reference: end-to-end perfect placement.
        let q: Vec<u8> = (0..32).map(|i| (i % 4) as u8).collect();
        let a = semiglobal_align(&q, &q, &s).unwrap();
        assert_eq!(a.score, 64);
        assert_eq!(a.reference_range, 0..32);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn semiglobal_properties(
            q in proptest::collection::vec(0u8..4, 1..40),
            r in proptest::collection::vec(0u8..4, 1..60),
        ) {
            let s = scheme();
            let a = semiglobal_align(&q, &r, &s).unwrap();
            prop_assert_eq!(a.score, semiglobal_score(&q, &r, &s));
            prop_assert!(a.score >= crate::dp::score_only(&q, &r, &s));
            prop_assert_eq!(a.cigar.query_len(), q.len());
            let seg = &r[a.reference_range.clone()];
            prop_assert_eq!(a.cigar.score(&q, seg, &s).unwrap(), a.score);
        }
    }
}
