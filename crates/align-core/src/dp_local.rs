//! Local alignment (Smith–Waterman) golden model.
//!
//! The paper's recurrences are global (Needleman–Wunsch); local alignment
//! is the other classical DP the SMX operators support by clamping at
//! zero. This module provides the exact local golden model, used by the
//! extension tests and by seed-extension-style use cases.

use crate::cigar::{Cigar, Op};
use crate::error::AlignError;
use crate::scoring::ScoringScheme;

/// A local alignment: the best-scoring segment pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalAlignment {
    /// Optimal local score (≥ 0).
    pub score: i32,
    /// Aligned query range (half-open).
    pub query_range: std::ops::Range<usize>,
    /// Aligned reference range (half-open).
    pub reference_range: std::ops::Range<usize>,
    /// Operations over the aligned segment.
    pub cigar: Cigar,
}

/// Computes the optimal local alignment.
///
/// # Errors
///
/// Returns [`AlignError::EmptySequence`] for empty inputs. A fully
/// dissimilar pair yields a zero-score empty alignment.
pub fn local_align(
    query: &[u8],
    reference: &[u8],
    scheme: &ScoringScheme,
) -> Result<LocalAlignment, AlignError> {
    if query.is_empty() || reference.is_empty() {
        return Err(AlignError::EmptySequence);
    }
    let (m, n) = (query.len(), reference.len());
    let w = n + 1;
    let mut h = vec![0i32; (m + 1) * w];
    let (gi, gd) = (scheme.gap_insert(), scheme.gap_delete());
    let (mut best, mut bi, mut bj) = (0i32, 0usize, 0usize);
    for i in 1..=m {
        for j in 1..=n {
            // Saturating: huge match scores or penalties clamp instead of
            // wrapping on pathological inputs.
            let v = (h[(i - 1) * w + j - 1]
                .saturating_add(scheme.score(query[i - 1], reference[j - 1])))
            .max(h[(i - 1) * w + j].saturating_add(gi))
            .max(h[i * w + j - 1].saturating_add(gd))
            .max(0);
            h[i * w + j] = v;
            if v > best {
                best = v;
                bi = i;
                bj = j;
            }
        }
    }
    // Traceback from the maximum until a zero cell.
    let (mut i, mut j) = (bi, bj);
    let mut cigar = Cigar::new();
    while i > 0 && j > 0 && h[i * w + j] > 0 {
        let here = h[i * w + j];
        if here
            == h[(i - 1) * w + j - 1].saturating_add(scheme.score(query[i - 1], reference[j - 1]))
        {
            cigar.push(if query[i - 1] == reference[j - 1] { Op::Match } else { Op::Mismatch });
            i -= 1;
            j -= 1;
        } else if here == h[(i - 1) * w + j].saturating_add(gi) {
            cigar.push(Op::Insert);
            i -= 1;
        } else if here == h[i * w + j - 1].saturating_add(gd) {
            cigar.push(Op::Delete);
            j -= 1;
        } else {
            // here == 0 handled by the loop condition; anything else is a bug.
            return Err(AlignError::Internal(format!("broken local traceback at ({i}, {j})")));
        }
    }
    cigar.reverse();
    Ok(LocalAlignment { score: best, query_range: i..bi, reference_range: j..bj, cigar })
}

/// Score-only local alignment in `O(n)` memory.
#[must_use]
pub fn local_score(query: &[u8], reference: &[u8], scheme: &ScoringScheme) -> i32 {
    let n = reference.len();
    let (gi, gd) = (scheme.gap_insert(), scheme.gap_delete());
    let mut row = vec![0i32; n + 1];
    let mut best = 0;
    for &q in query {
        let mut diag = row[0];
        for j in 1..=n {
            let v = (diag.saturating_add(scheme.score(q, reference[j - 1])))
                .max(row[j].saturating_add(gi))
                .max(row[j - 1].saturating_add(gd))
                .max(0);
            diag = row[j];
            row[j] = v;
            best = best.max(v);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn scheme() -> ScoringScheme {
        ScoringScheme::linear(2, -3, -3).unwrap()
    }

    #[test]
    fn extreme_scores_saturate_instead_of_overflowing() {
        // A 2e9 match score over 3000 identical symbols would blow past
        // i32::MAX without saturation; both variants must clamp and agree.
        let scheme = ScoringScheme::linear(2_000_000_000, -1, -1).unwrap();
        let q = vec![0u8; 3000];
        let a = local_align(&q, &q, &scheme).unwrap();
        assert_eq!(a.score, i32::MAX);
        assert_eq!(a.score, local_score(&q, &q, &scheme));
    }

    #[test]
    fn degenerate_inputs_yield_typed_errors_or_defined_results() {
        let s = scheme();
        assert!(matches!(local_align(&[], &[0], &s), Err(AlignError::EmptySequence)));
        assert!(matches!(local_align(&[0], &[], &s), Err(AlignError::EmptySequence)));
        let a = local_align(&[1], &[1], &s).unwrap();
        assert_eq!(a.score, 2);
        assert_eq!(a.cigar.to_string(), "1=");
        // Single dissimilar symbols: empty zero-score alignment.
        let a = local_align(&[1], &[2], &s).unwrap();
        assert_eq!(a.score, 0);
        assert!(a.cigar.runs().is_empty());
    }

    #[test]
    fn finds_embedded_segment() {
        // The shared segment 1,2,3,1 is embedded in unrelated flanks.
        let q = [0u8, 0, 0, 1, 2, 3, 1, 0, 0];
        let r = [3u8, 3, 1, 2, 3, 1, 3, 3, 3];
        let a = local_align(&q, &r, &scheme()).unwrap();
        assert_eq!(a.score, 8); // 4 matches x 2
        assert_eq!(a.query_range, 3..7);
        assert_eq!(a.reference_range, 2..6);
        assert_eq!(a.cigar.to_string(), "4=");
    }

    #[test]
    fn dissimilar_pair_scores_zero() {
        let q = [0u8; 5];
        let r = [1u8; 5];
        let a = local_align(&q, &r, &scheme()).unwrap();
        assert_eq!(a.score, 0);
        assert!(a.cigar.is_empty());
    }

    #[test]
    fn local_at_least_global() {
        let q = [0u8, 1, 2, 3, 0];
        let r = [0u8, 1, 3, 3, 0];
        let s = scheme();
        let local = local_score(&q, &r, &s);
        let global = crate::dp::score_only(&q, &r, &s);
        assert!(local >= global);
    }

    #[test]
    fn score_only_matches_full() {
        let q = [0u8, 1, 2, 3, 0, 2, 2, 1];
        let r = [1u8, 1, 2, 3, 3, 2, 0];
        let s = scheme();
        assert_eq!(local_score(&q, &r, &s), local_align(&q, &r, &s).unwrap().score);
    }

    #[test]
    fn segment_rescores_to_local_score() {
        let q = [0u8, 0, 1, 2, 3, 1, 2, 0, 3];
        let r = [3u8, 1, 2, 3, 1, 2, 1, 1];
        let s = scheme();
        let a = local_align(&q, &r, &s).unwrap();
        let seg_q = &q[a.query_range.clone()];
        let seg_r = &r[a.reference_range.clone()];
        assert_eq!(a.cigar.score(seg_q, seg_r, &s).unwrap(), a.score);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn local_properties(
            q in proptest::collection::vec(0u8..4, 1..50),
            r in proptest::collection::vec(0u8..4, 1..50),
        ) {
            let s = scheme();
            let a = local_align(&q, &r, &s).unwrap();
            prop_assert!(a.score >= 0);
            prop_assert_eq!(a.score, local_score(&q, &r, &s));
            prop_assert!(a.score >= crate::dp::score_only(&q, &r, &s));
            if !a.cigar.is_empty() {
                let seg_q = &q[a.query_range.clone()];
                let seg_r = &r[a.reference_range.clone()];
                prop_assert_eq!(a.cigar.score(seg_q, seg_r, &s).unwrap(), a.score);
            }
        }
    }
}
