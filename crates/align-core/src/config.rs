//! Hardware-facing configuration shared by every SMX component: the
//! runtime-configurable element width (`EW`) and the four paper-level
//! alignment configurations (paper §7, "Sequence alignment configurations").

use crate::alphabet::Alphabet;
use crate::error::AlignError;
use crate::scoring::ScoringScheme;
use crate::submat::SubstMatrix;

/// DP-element width in bits. Determines the vector length `VL` (how many
/// DP-elements pack into a 64-bit word) and which SMX-PE array is used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ElementWidth {
    /// 2-bit elements, VL = 32 (DNA edit distance).
    W2,
    /// 4-bit elements, VL = 16 (DNA gap model).
    W4,
    /// 6-bit elements, VL = 10 (protein substitution matrices).
    W6,
    /// 8-bit elements, VL = 8 (ASCII text).
    W8,
}

impl ElementWidth {
    /// All widths in increasing order.
    pub const ALL: [ElementWidth; 4] =
        [ElementWidth::W2, ElementWidth::W4, ElementWidth::W6, ElementWidth::W8];

    /// Bits per DP-element.
    #[must_use]
    pub fn bits(self) -> u8 {
        match self {
            ElementWidth::W2 => 2,
            ElementWidth::W4 => 4,
            ElementWidth::W6 => 6,
            ElementWidth::W8 => 8,
        }
    }

    /// Vector length: DP-elements per 64-bit word (32, 16, 10, 8).
    ///
    /// Note the W6 case packs 10 elements (60 bits) leaving 4 bits unused,
    /// exactly as in the paper's `10×SMX-PE6` array.
    #[must_use]
    pub fn vl(self) -> usize {
        match self {
            ElementWidth::W2 => 32,
            ElementWidth::W4 => 16,
            ElementWidth::W6 => 10,
            ElementWidth::W8 => 8,
        }
    }

    /// Maximum encodable element value (`2^EW − 1`).
    #[must_use]
    pub fn max_value(self) -> u32 {
        (1u32 << self.bits()) - 1
    }

    /// SMX-engine pipeline depth at the 1 GHz design point (paper §7:
    /// 7, 5, 4, 3 cycles for the 2/4/6/8-bit configurations).
    #[must_use]
    pub fn engine_pipeline_depth(self) -> u32 {
        match self {
            ElementWidth::W2 => 7,
            ElementWidth::W4 => 5,
            ElementWidth::W6 => 4,
            ElementWidth::W8 => 3,
        }
    }

    /// Element width required to hold values in `[0, theta]`.
    ///
    /// # Errors
    ///
    /// Returns [`AlignError::ElementWidthOverflow`] when `theta` exceeds the
    /// widest supported element (8 bits), and
    /// [`AlignError::InvalidScoring`] for a negative `theta`.
    pub fn for_theta(theta: i32) -> Result<ElementWidth, AlignError> {
        if theta < 0 {
            return Err(AlignError::InvalidScoring(format!(
                "theta must be non-negative, got {theta}"
            )));
        }
        ElementWidth::ALL
            .into_iter()
            .find(|ew| theta as u32 <= ew.max_value())
            .ok_or(AlignError::ElementWidthOverflow { theta, ew_bits: 8 })
    }

    /// Whether values in `[0, theta]` fit in this width.
    #[must_use]
    pub fn fits_theta(self, theta: i32) -> bool {
        theta >= 0 && theta as u32 <= self.max_value()
    }
}

impl std::fmt::Display for ElementWidth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}b", self.bits())
    }
}

/// One of the paper's four evaluation configurations (paper §7), bundling an
/// alphabet, a scoring scheme, and the element width used by the hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlignmentConfig {
    /// 2-bit DNA characters, edit distance.
    DnaEdit,
    /// 4-bit DNA characters, linear gap model (KSW2-style 2/−4/−4 weights).
    DnaGap,
    /// 6-bit protein characters, linear gaps + BLOSUM50.
    Protein,
    /// 8-bit ASCII characters, edit distance.
    Ascii,
}

impl AlignmentConfig {
    /// All four configurations, in paper order.
    pub const ALL: [AlignmentConfig; 4] = [
        AlignmentConfig::DnaEdit,
        AlignmentConfig::DnaGap,
        AlignmentConfig::Protein,
        AlignmentConfig::Ascii,
    ];

    /// The alphabet used by this configuration.
    #[must_use]
    pub fn alphabet(self) -> Alphabet {
        match self {
            AlignmentConfig::DnaEdit => Alphabet::Dna2,
            AlignmentConfig::DnaGap => Alphabet::Dna4,
            AlignmentConfig::Protein => Alphabet::Protein,
            AlignmentConfig::Ascii => Alphabet::Ascii,
        }
    }

    /// The element width used by this configuration.
    #[must_use]
    pub fn element_width(self) -> ElementWidth {
        match self {
            AlignmentConfig::DnaEdit => ElementWidth::W2,
            AlignmentConfig::DnaGap => ElementWidth::W4,
            AlignmentConfig::Protein => ElementWidth::W6,
            AlignmentConfig::Ascii => ElementWidth::W8,
        }
    }

    /// The canonical scoring scheme for this configuration.
    ///
    /// DNA-gap uses the Minimap2/KSW2 short-read defaults (match +2,
    /// mismatch −4, gap −4); protein uses BLOSUM50 with gap −5.
    #[must_use]
    pub fn scoring(self) -> ScoringScheme {
        match self {
            AlignmentConfig::DnaEdit | AlignmentConfig::Ascii => ScoringScheme::edit(),
            AlignmentConfig::DnaGap => {
                ScoringScheme::linear(2, -4, -4).expect("static scheme is valid")
            }
            AlignmentConfig::Protein => {
                ScoringScheme::matrix(SubstMatrix::blosum50(), -5).expect("static scheme is valid")
            }
        }
    }

    /// Short lowercase name, used in harness output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AlignmentConfig::DnaEdit => "dna-edit",
            AlignmentConfig::DnaGap => "dna-gap",
            AlignmentConfig::Protein => "protein",
            AlignmentConfig::Ascii => "ascii",
        }
    }
}

impl std::fmt::Display for AlignmentConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vl_times_bits_fits_64() {
        for ew in ElementWidth::ALL {
            assert!(ew.vl() * ew.bits() as usize <= 64, "{ew}");
        }
    }

    #[test]
    fn vl_matches_paper() {
        assert_eq!(ElementWidth::W2.vl(), 32);
        assert_eq!(ElementWidth::W4.vl(), 16);
        assert_eq!(ElementWidth::W6.vl(), 10);
        assert_eq!(ElementWidth::W8.vl(), 8);
    }

    #[test]
    fn pipeline_depths_match_paper() {
        let depths: Vec<u32> =
            ElementWidth::ALL.iter().map(|ew| ew.engine_pipeline_depth()).collect();
        assert_eq!(depths, vec![7, 5, 4, 3]);
    }

    #[test]
    fn for_theta_selects_minimal_width() {
        assert_eq!(ElementWidth::for_theta(0).unwrap(), ElementWidth::W2);
        assert_eq!(ElementWidth::for_theta(2).unwrap(), ElementWidth::W2);
        assert_eq!(ElementWidth::for_theta(3).unwrap(), ElementWidth::W2);
        assert_eq!(ElementWidth::for_theta(4).unwrap(), ElementWidth::W4);
        assert_eq!(ElementWidth::for_theta(15).unwrap(), ElementWidth::W4);
        assert_eq!(ElementWidth::for_theta(16).unwrap(), ElementWidth::W6);
        assert_eq!(ElementWidth::for_theta(39).unwrap(), ElementWidth::W6);
        assert_eq!(ElementWidth::for_theta(64).unwrap(), ElementWidth::W8);
        assert!(ElementWidth::for_theta(256).is_err());
        assert!(ElementWidth::for_theta(-1).is_err());
    }

    #[test]
    fn configs_pair_alphabet_and_ew() {
        for cfg in AlignmentConfig::ALL {
            assert_eq!(cfg.alphabet().bits(), cfg.element_width().bits());
        }
    }

    #[test]
    fn config_schemes_fit_their_element_width() {
        for cfg in AlignmentConfig::ALL {
            let theta = cfg.scoring().theta();
            assert!(
                cfg.element_width().fits_theta(theta),
                "{cfg}: theta {theta} vs {}",
                cfg.element_width()
            );
        }
    }

    #[test]
    fn protein_theta_fits_6_bits_as_paper_claims() {
        // Paper §4.3.3: BLOSUM-style matrices with indel costs 5..12 lead to
        // theta <= 39, encodable in 6 bits.
        let theta = AlignmentConfig::Protein.scoring().theta();
        assert!(theta <= 39, "theta {theta}");
    }
}
