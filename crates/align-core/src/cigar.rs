//! Alignment operations, CIGAR run-length representation, and validated
//! alignment results (paper §2.1, "alignment traceback").

use crate::error::AlignError;
use crate::scoring::ScoringScheme;

/// One alignment operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Both symbols equal (`=` in extended CIGAR).
    Match,
    /// Substitution (`X`).
    Mismatch,
    /// Extra query symbol (`I`); consumes query only.
    Insert,
    /// Extra reference symbol (`D`); consumes reference only.
    Delete,
}

impl Op {
    /// Extended-CIGAR character for this operation.
    #[must_use]
    pub fn symbol(self) -> char {
        match self {
            Op::Match => '=',
            Op::Mismatch => 'X',
            Op::Insert => 'I',
            Op::Delete => 'D',
        }
    }

    /// Whether the operation consumes a query symbol.
    #[must_use]
    pub fn consumes_query(self) -> bool {
        !matches!(self, Op::Delete)
    }

    /// Whether the operation consumes a reference symbol.
    #[must_use]
    pub fn consumes_reference(self) -> bool {
        !matches!(self, Op::Insert)
    }
}

/// A run-length-encoded sequence of alignment operations.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Cigar {
    runs: Vec<(Op, u32)>,
}

impl Cigar {
    /// An empty CIGAR.
    #[must_use]
    pub fn new() -> Cigar {
        Cigar::default()
    }

    /// Appends one operation, merging with the trailing run.
    pub fn push(&mut self, op: Op) {
        self.push_run(op, 1);
    }

    /// Appends `count` copies of `op`, merging with the trailing run.
    pub fn push_run(&mut self, op: Op, count: u32) {
        if count == 0 {
            return;
        }
        match self.runs.last_mut() {
            Some((last, n)) if *last == op => *n += count,
            _ => self.runs.push((op, count)),
        }
    }

    /// Appends all runs of `other` (used when stitching Hirschberg halves).
    pub fn extend_from(&mut self, other: &Cigar) {
        for &(op, n) in &other.runs {
            self.push_run(op, n);
        }
    }

    /// Reverses the operation order in place (tracebacks are produced
    /// end-to-start).
    pub fn reverse(&mut self) {
        self.runs.reverse();
    }

    /// Run-length view.
    #[must_use]
    pub fn runs(&self) -> &[(Op, u32)] {
        &self.runs
    }

    /// Iterates over individual operations (expanded from runs).
    pub fn iter_ops(&self) -> impl Iterator<Item = Op> + '_ {
        self.runs.iter().flat_map(|&(op, n)| std::iter::repeat_n(op, n as usize))
    }

    /// Total number of operations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.runs.iter().map(|&(_, n)| n as usize).sum()
    }

    /// Whether there are no operations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Number of query symbols consumed.
    #[must_use]
    pub fn query_len(&self) -> usize {
        self.runs.iter().filter(|(op, _)| op.consumes_query()).map(|&(_, n)| n as usize).sum()
    }

    /// Number of reference symbols consumed.
    #[must_use]
    pub fn reference_len(&self) -> usize {
        self.runs.iter().filter(|(op, _)| op.consumes_reference()).map(|&(_, n)| n as usize).sum()
    }

    /// Fraction of operations that are matches, in `[0, 1]`.
    #[must_use]
    pub fn identity(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let matches: usize =
            self.runs.iter().filter(|(op, _)| *op == Op::Match).map(|&(_, n)| n as usize).sum();
        matches as f64 / self.len() as f64
    }

    /// Scores this alignment against the given sequences and scheme,
    /// verifying that match/mismatch operations agree with the symbols.
    ///
    /// # Errors
    ///
    /// Returns [`AlignError::Internal`] if the CIGAR does not consume
    /// exactly the two sequences or labels a match/mismatch incorrectly.
    pub fn score(
        &self,
        query: &[u8],
        reference: &[u8],
        scheme: &ScoringScheme,
    ) -> Result<i32, AlignError> {
        let mut qi = 0usize;
        let mut rj = 0usize;
        let mut total = 0i64;
        for op in self.iter_ops() {
            match op {
                Op::Match | Op::Mismatch => {
                    let (a, b) = (
                        *query.get(qi).ok_or_else(|| overrun("query"))?,
                        *reference.get(rj).ok_or_else(|| overrun("reference"))?,
                    );
                    let is_match = a == b;
                    if is_match != (op == Op::Match) {
                        return Err(AlignError::Internal(format!(
                            "cigar mislabels position q[{qi}]/r[{rj}]"
                        )));
                    }
                    total += scheme.score(a, b) as i64;
                    qi += 1;
                    rj += 1;
                }
                Op::Insert => {
                    total += scheme.gap_insert() as i64;
                    qi += 1;
                }
                Op::Delete => {
                    total += scheme.gap_delete() as i64;
                    rj += 1;
                }
            }
        }
        if qi != query.len() || rj != reference.len() {
            return Err(AlignError::Internal(format!(
                "cigar consumes {qi}/{} query and {rj}/{} reference symbols",
                query.len(),
                reference.len()
            )));
        }
        Ok(total as i32)
    }
}

fn overrun(which: &str) -> AlignError {
    AlignError::Internal(format!("cigar overruns the {which} sequence"))
}

/// Operation counts of a CIGAR (for identity/coverage statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpStats {
    /// Matched positions.
    pub matches: u64,
    /// Mismatched positions.
    pub mismatches: u64,
    /// Inserted query characters.
    pub insertions: u64,
    /// Deleted reference characters.
    pub deletions: u64,
    /// Contiguous gap segments (insert or delete runs).
    pub gap_segments: u64,
}

impl Cigar {
    /// Parses an extended-CIGAR string (`"3=1X2I"`, `*` = empty).
    ///
    /// # Errors
    ///
    /// Returns [`AlignError::Internal`] describing the malformed token.
    pub fn parse(text: &str) -> Result<Cigar, AlignError> {
        let text = text.trim();
        if text == "*" || text.is_empty() {
            return Ok(Cigar::new());
        }
        let mut cigar = Cigar::new();
        let mut count: u64 = 0;
        let mut saw_digit = false;
        for c in text.chars() {
            if let Some(d) = c.to_digit(10) {
                count = count * 10 + u64::from(d);
                if count > u64::from(u32::MAX) {
                    return Err(AlignError::Internal("cigar run length overflows u32".into()));
                }
                saw_digit = true;
                continue;
            }
            if !saw_digit || count == 0 {
                return Err(AlignError::Internal(format!(
                    "cigar operation {c:?} needs a positive run length"
                )));
            }
            let op = match c {
                '=' => Op::Match,
                'X' => Op::Mismatch,
                'I' => Op::Insert,
                'D' => Op::Delete,
                other => {
                    return Err(AlignError::Internal(format!("unknown cigar operation {other:?}")))
                }
            };
            cigar.push_run(op, count as u32);
            count = 0;
            saw_digit = false;
        }
        if saw_digit {
            return Err(AlignError::Internal("trailing run length without operation".into()));
        }
        Ok(cigar)
    }

    /// Per-operation counts.
    #[must_use]
    pub fn stats(&self) -> OpStats {
        let mut s = OpStats::default();
        for &(op, n) in &self.runs {
            match op {
                Op::Match => s.matches += u64::from(n),
                Op::Mismatch => s.mismatches += u64::from(n),
                Op::Insert => {
                    s.insertions += u64::from(n);
                    s.gap_segments += 1;
                }
                Op::Delete => {
                    s.deletions += u64::from(n);
                    s.gap_segments += 1;
                }
            }
        }
        s
    }
}

impl std::str::FromStr for Cigar {
    type Err = AlignError;

    fn from_str(s: &str) -> Result<Cigar, AlignError> {
        Cigar::parse(s)
    }
}

impl std::fmt::Display for Cigar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.runs.is_empty() {
            return f.write_str("*");
        }
        for &(op, n) in &self.runs {
            write!(f, "{n}{}", op.symbol())?;
        }
        Ok(())
    }
}

impl FromIterator<Op> for Cigar {
    fn from_iter<T: IntoIterator<Item = Op>>(iter: T) -> Cigar {
        let mut c = Cigar::new();
        for op in iter {
            c.push(op);
        }
        c
    }
}

/// A scored alignment: the optimal score plus the operation path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    /// Optimal alignment score under the scheme used to produce it.
    pub score: i32,
    /// The operation path from `(0, 0)` to `(m, n)`.
    pub cigar: Cigar,
}

impl Alignment {
    /// Verifies internal consistency: the CIGAR re-scores to `self.score`
    /// and consumes exactly the given sequences.
    ///
    /// # Errors
    ///
    /// Returns [`AlignError::Internal`] describing the inconsistency.
    pub fn verify(
        &self,
        query: &[u8],
        reference: &[u8],
        scheme: &ScoringScheme,
    ) -> Result<(), AlignError> {
        let rescored = self.cigar.score(query, reference, scheme)?;
        if rescored != self.score {
            return Err(AlignError::Internal(format!(
                "cigar re-scores to {rescored}, alignment claims {}",
                self.score
            )));
        }
        Ok(())
    }
}

impl std::fmt::Display for Alignment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "score={} cigar={}", self.score, self.cigar)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_merges_runs() {
        let mut c = Cigar::new();
        c.push(Op::Match);
        c.push(Op::Match);
        c.push(Op::Insert);
        c.push(Op::Match);
        assert_eq!(c.runs(), &[(Op::Match, 2), (Op::Insert, 1), (Op::Match, 1)]);
        assert_eq!(c.to_string(), "2=1I1=");
    }

    #[test]
    fn lengths() {
        let c: Cigar = [Op::Match, Op::Mismatch, Op::Insert, Op::Delete].into_iter().collect();
        assert_eq!(c.len(), 4);
        assert_eq!(c.query_len(), 3);
        assert_eq!(c.reference_len(), 3);
    }

    #[test]
    fn identity() {
        let c: Cigar = [Op::Match, Op::Match, Op::Mismatch, Op::Delete].into_iter().collect();
        assert!((c.identity() - 0.5).abs() < 1e-12);
        assert_eq!(Cigar::new().identity(), 0.0);
    }

    #[test]
    fn empty_display_is_star() {
        assert_eq!(Cigar::new().to_string(), "*");
    }

    #[test]
    fn score_edit_model() {
        // q = AC, r = AG: 1 match + 1 mismatch = -1 under edit.
        let c: Cigar = [Op::Match, Op::Mismatch].into_iter().collect();
        let s = c.score(&[0, 1], &[0, 2], &ScoringScheme::edit()).unwrap();
        assert_eq!(s, -1);
    }

    #[test]
    fn score_detects_mislabel() {
        let c: Cigar = [Op::Match].into_iter().collect();
        assert!(c.score(&[0], &[1], &ScoringScheme::edit()).is_err());
    }

    #[test]
    fn score_detects_underrun() {
        let c: Cigar = [Op::Match].into_iter().collect();
        assert!(c.score(&[0, 0], &[0], &ScoringScheme::edit()).is_err());
    }

    #[test]
    fn verify_checks_score() {
        let cigar: Cigar = [Op::Match].into_iter().collect();
        let good = Alignment { score: 0, cigar: cigar.clone() };
        good.verify(&[1], &[1], &ScoringScheme::edit()).unwrap();
        let bad = Alignment { score: 5, cigar };
        assert!(bad.verify(&[1], &[1], &ScoringScheme::edit()).is_err());
    }

    #[test]
    fn parse_roundtrip() {
        for text in ["3=1X2I4D", "1=", "*", "10=5I10="] {
            let c = Cigar::parse(text).unwrap();
            let expect = if text == "*" { "*".to_string() } else { text.to_string() };
            assert_eq!(c.to_string(), expect);
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(Cigar::parse("=3").is_err());
        assert!(Cigar::parse("3M").is_err()); // plain M is ambiguous: rejected
        assert!(Cigar::parse("3").is_err());
        assert!(Cigar::parse("0=").is_err());
        assert!(Cigar::parse("99999999999=").is_err());
    }

    #[test]
    fn from_str_trait() {
        let c: Cigar = "2=1I".parse().unwrap();
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn stats_count_segments() {
        let c = Cigar::parse("5=1X3I2=2D1D").unwrap();
        let s = c.stats();
        assert_eq!(s.matches, 7);
        assert_eq!(s.mismatches, 1);
        assert_eq!(s.insertions, 3);
        assert_eq!(s.deletions, 3);
        // 3I is one segment; 2D and 1D merge into one run (2D1D -> 3D).
        assert_eq!(s.gap_segments, 2);
    }

    #[test]
    fn extend_and_reverse() {
        let mut a: Cigar = [Op::Match, Op::Insert].into_iter().collect();
        let b: Cigar = [Op::Insert, Op::Delete].into_iter().collect();
        a.extend_from(&b);
        assert_eq!(a.to_string(), "1=2I1D");
        a.reverse();
        assert_eq!(a.to_string(), "1D2I1=");
    }
}
