//! Encoded sequences.

use crate::alphabet::Alphabet;
use crate::error::AlignError;

/// A sequence of alphabet-encoded symbols.
///
/// Stores one code per byte (the *packed* multi-symbol-per-word
/// representation used by the hardware lives in `smx-diffenc`; this type is
/// the canonical, validated in-memory form).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Sequence {
    alphabet: Alphabet,
    codes: Vec<u8>,
}

impl Sequence {
    /// Builds a sequence by encoding `text`.
    ///
    /// # Errors
    ///
    /// Returns [`AlignError::InvalidSymbol`] on the first character that is
    /// not part of `alphabet`.
    pub fn from_text(alphabet: Alphabet, text: &str) -> Result<Sequence, AlignError> {
        let codes =
            text.chars().map(|c| alphabet.encode(c)).collect::<Result<Vec<u8>, AlignError>>()?;
        Ok(Sequence { alphabet, codes })
    }

    /// Builds a sequence from pre-encoded codes, validating each.
    ///
    /// # Errors
    ///
    /// Returns [`AlignError::InvalidCode`] on the first out-of-range code.
    pub fn from_codes(alphabet: Alphabet, codes: Vec<u8>) -> Result<Sequence, AlignError> {
        if let Some(&bad) = codes.iter().find(|&&c| !alphabet.is_valid_code(c)) {
            return Err(AlignError::InvalidCode { code: bad, alphabet: alphabet.name() });
        }
        Ok(Sequence { alphabet, codes })
    }

    /// The sequence's alphabet.
    #[must_use]
    pub fn alphabet(&self) -> Alphabet {
        self.alphabet
    }

    /// Encoded symbols.
    #[must_use]
    pub fn codes(&self) -> &[u8] {
        &self.codes
    }

    /// Number of symbols.
    #[must_use]
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the sequence has no symbols.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Symbol code at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.len()`.
    #[must_use]
    pub fn code(&self, idx: usize) -> u8 {
        self.codes[idx]
    }

    /// Decodes back to text.
    #[must_use]
    pub fn to_text(&self) -> String {
        self.codes.iter().map(|&c| self.alphabet.decode(c).expect("codes are validated")).collect()
    }

    /// A sub-sequence covering `range` (clamped to the sequence length).
    #[must_use]
    pub fn subsequence(&self, range: std::ops::Range<usize>) -> Sequence {
        let start = range.start.min(self.codes.len());
        let end = range.end.min(self.codes.len()).max(start);
        Sequence { alphabet: self.alphabet, codes: self.codes[start..end].to_vec() }
    }

    /// The reverse of this sequence (used by Hirschberg's algorithm).
    #[must_use]
    pub fn reversed(&self) -> Sequence {
        let mut codes = self.codes.clone();
        codes.reverse();
        Sequence { alphabet: self.alphabet, codes }
    }

    /// Iterates over symbol codes.
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, u8>> {
        self.codes.iter().copied()
    }
}

impl std::fmt::Display for Sequence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_roundtrip() {
        let s = Sequence::from_text(Alphabet::Dna4, "ACGTN").unwrap();
        assert_eq!(s.len(), 5);
        assert_eq!(s.to_text(), "ACGTN");
        assert_eq!(s.codes(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn invalid_text_rejected() {
        assert!(Sequence::from_text(Alphabet::Dna2, "ACGX").is_err());
    }

    #[test]
    fn from_codes_validates() {
        assert!(Sequence::from_codes(Alphabet::Dna2, vec![0, 1, 4]).is_err());
        assert!(Sequence::from_codes(Alphabet::Dna2, vec![0, 1, 3]).is_ok());
    }

    #[test]
    fn subsequence_clamps() {
        let s = Sequence::from_text(Alphabet::Dna2, "ACGT").unwrap();
        assert_eq!(s.subsequence(1..3).to_text(), "CG");
        assert_eq!(s.subsequence(2..100).to_text(), "GT");
        assert_eq!(s.subsequence(5..9).to_text(), "");
    }

    #[test]
    fn reversed() {
        let s = Sequence::from_text(Alphabet::Dna2, "ACGT").unwrap();
        assert_eq!(s.reversed().to_text(), "TGCA");
    }

    #[test]
    fn display_matches_text() {
        let s = Sequence::from_text(Alphabet::Protein, "WYV").unwrap();
        assert_eq!(format!("{s}"), "WYV");
    }
}
