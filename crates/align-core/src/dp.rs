//! Golden-model dynamic programming: full-matrix Needleman–Wunsch with
//! traceback, and a linear-memory score-only variant (paper §2.1, Eq. 1–2).
//!
//! These are deliberately simple, allocation-heavy reference
//! implementations; every accelerated engine in the workspace is validated
//! against them. The global traceback tie-break is **diagonal ≻ up
//! (insert) ≻ left (delete)** and is shared by all engines so CIGARs are
//! directly comparable.

use crate::cigar::{Alignment, Cigar, Op};
use crate::error::AlignError;
use crate::scoring::ScoringScheme;
use crate::sequence::Sequence;

/// A dense `(m+1) × (n+1)` DP matrix of absolute scores.
///
/// Row `i` corresponds to having consumed `i` query symbols; column `j` to
/// `j` reference symbols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DpMatrix {
    rows: usize,
    cols: usize,
    data: Vec<i32>,
}

impl DpMatrix {
    /// Builds a matrix from raw row-major data (used by engines that
    /// reconstruct absolute values from deltas and then reuse
    /// [`traceback`]).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or either dimension is zero.
    #[must_use]
    pub fn from_raw(rows: usize, cols: usize, data: Vec<i32>) -> DpMatrix {
        assert!(rows > 0 && cols > 0, "matrix must be non-empty");
        assert_eq!(data.len(), rows * cols, "data length must be rows*cols");
        DpMatrix { rows, cols, data }
    }

    /// Number of rows (`query length + 1`).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (`reference length + 1`).
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Value at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows` or `j >= cols`.
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> i32 {
        assert!(i < self.rows && j < self.cols, "({i}, {j}) out of bounds");
        self.data[i * self.cols + j]
    }

    fn set(&mut self, i: usize, j: usize, v: i32) {
        self.data[i * self.cols + j] = v;
    }

    /// The bottom-right element: the optimal global alignment score.
    #[must_use]
    pub fn final_score(&self) -> i32 {
        self.data[self.rows * self.cols - 1]
    }
}

/// Computes the full DP matrix for `query` × `reference` codes.
///
/// Complexity: `O(m·n)` time and space. Intended as a golden model and for
/// small tiles; larger computations should use the engines built on it.
#[must_use]
pub fn full_matrix(query: &[u8], reference: &[u8], scheme: &ScoringScheme) -> DpMatrix {
    full_matrix_checked(query, reference, scheme, &mut || Ok(()))
        .expect("an infallible check cannot abort the DP")
}

/// Rows computed between cooperative `check` calls in
/// [`full_matrix_checked`] — the host-side analogue of the coprocessor's
/// tile-boundary granularity.
const CHECK_INTERVAL_ROWS: usize = 64;

/// [`full_matrix`] with a cooperative abort point every
/// [`CHECK_INTERVAL_ROWS`] rows: `check`'s error (typically a
/// cancellation or deadline) aborts the computation. This is what makes
/// host-side recomputation honor the same deadline budget as the
/// accelerated paths instead of running to completion regardless.
///
/// # Errors
///
/// Whatever `check` returns.
pub fn full_matrix_checked(
    query: &[u8],
    reference: &[u8],
    scheme: &ScoringScheme,
    check: &mut dyn FnMut() -> Result<(), AlignError>,
) -> Result<DpMatrix, AlignError> {
    let (m, n) = (query.len(), reference.len());
    let mut dp = DpMatrix { rows: m + 1, cols: n + 1, data: vec![0; (m + 1) * (n + 1)] };
    let (gi, gd) = (scheme.gap_insert(), scheme.gap_delete());
    // Saturating arithmetic throughout: pathological lengths × penalties
    // (`i as i32 * gi` and long accumulation chains) must clamp instead of
    // wrapping, so extreme inputs stay well-defined.
    for i in 1..=m {
        dp.set(i, 0, (i as i32).saturating_mul(gi));
    }
    for j in 1..=n {
        dp.set(0, j, (j as i32).saturating_mul(gd));
    }
    for i in 1..=m {
        if i % CHECK_INTERVAL_ROWS == 0 {
            check()?;
        }
        for j in 1..=n {
            let diag =
                dp.get(i - 1, j - 1).saturating_add(scheme.score(query[i - 1], reference[j - 1]));
            let up = dp.get(i - 1, j).saturating_add(gi);
            let left = dp.get(i, j - 1).saturating_add(gd);
            dp.set(i, j, diag.max(up).max(left));
        }
    }
    Ok(dp)
}

/// Computes only the optimal score, using `O(n)` memory.
#[must_use]
pub fn score_only(query: &[u8], reference: &[u8], scheme: &ScoringScheme) -> i32 {
    last_row(query, reference, scheme)[reference.len()]
}

/// Computes the last DP row (`M_{m, 0..=n}`) in `O(n)` memory.
///
/// This is the primitive Hirschberg's algorithm is built from.
#[must_use]
pub fn last_row(query: &[u8], reference: &[u8], scheme: &ScoringScheme) -> Vec<i32> {
    let n = reference.len();
    let (gi, gd) = (scheme.gap_insert(), scheme.gap_delete());
    let mut row: Vec<i32> = (0..=n as i32).map(|j| j.saturating_mul(gd)).collect();
    for (i, &q) in query.iter().enumerate() {
        let mut prev_diag = row[0];
        row[0] = (i as i32 + 1).saturating_mul(gi);
        for j in 1..=n {
            let diag = prev_diag.saturating_add(scheme.score(q, reference[j - 1]));
            let up = row[j].saturating_add(gi);
            let left = row[j - 1].saturating_add(gd);
            prev_diag = row[j];
            row[j] = diag.max(up).max(left);
        }
    }
    row
}

/// The last-needle-row scoring contract shared by the streaming kernels:
/// the maximum over a final DP row and the **leftmost** column attaining
/// it (the natural prefix-alignment end position).
///
/// # Panics
///
/// Panics if `row` is empty (a DP row always has `n + 1` entries).
#[must_use]
pub fn last_row_best(row: &[i32]) -> (i32, usize) {
    assert!(!row.is_empty(), "a DP row has at least the border column");
    let mut best = row[0];
    let mut end = 0;
    for (j, &v) in row.iter().enumerate().skip(1) {
        if v > best {
            best = v;
            end = j;
        }
    }
    (best, end)
}

/// Traces back through a full DP matrix, producing the optimal path.
///
/// Tie-break order: diagonal ≻ up (insert) ≻ left (delete).
#[must_use]
pub fn traceback(dp: &DpMatrix, query: &[u8], reference: &[u8], scheme: &ScoringScheme) -> Cigar {
    let (gi, gd) = (scheme.gap_insert(), scheme.gap_delete());
    let mut i = query.len();
    let mut j = reference.len();
    let mut cigar = Cigar::new();
    while i > 0 || j > 0 {
        let here = dp.get(i, j);
        if i > 0
            && j > 0
            && here
                == dp.get(i - 1, j - 1).saturating_add(scheme.score(query[i - 1], reference[j - 1]))
        {
            cigar.push(if query[i - 1] == reference[j - 1] { Op::Match } else { Op::Mismatch });
            i -= 1;
            j -= 1;
        } else if i > 0 && here == dp.get(i - 1, j).saturating_add(gi) {
            cigar.push(Op::Insert);
            i -= 1;
        } else {
            debug_assert!(
                j > 0 && here == dp.get(i, j - 1).saturating_add(gd),
                "broken traceback at ({i},{j})"
            );
            cigar.push(Op::Delete);
            j -= 1;
        }
    }
    cigar.reverse();
    cigar
}

/// Aligns two sequences with the golden model, returning score + CIGAR.
///
/// # Errors
///
/// Returns [`AlignError::AlphabetMismatch`] if the sequences use different
/// alphabets and [`AlignError::EmptySequence`] if either is empty.
pub fn align(
    query: &Sequence,
    reference: &Sequence,
    scheme: &ScoringScheme,
) -> Result<Alignment, AlignError> {
    if query.alphabet() != reference.alphabet() {
        return Err(AlignError::AlphabetMismatch);
    }
    if query.is_empty() || reference.is_empty() {
        return Err(AlignError::EmptySequence);
    }
    Ok(align_codes(query.codes(), reference.codes(), scheme))
}

/// Aligns raw code slices (no validation) with the golden model.
#[must_use]
pub fn align_codes(query: &[u8], reference: &[u8], scheme: &ScoringScheme) -> Alignment {
    let dp = full_matrix(query, reference, scheme);
    let cigar = traceback(&dp, query, reference, scheme);
    Alignment { score: dp.final_score(), cigar }
}

/// [`align_codes`] with the cooperative abort point of
/// [`full_matrix_checked`]. An aborted alignment returns `check`'s error
/// and produces no partial result.
///
/// # Errors
///
/// Whatever `check` returns.
pub fn align_codes_checked(
    query: &[u8],
    reference: &[u8],
    scheme: &ScoringScheme,
    check: &mut dyn FnMut() -> Result<(), AlignError>,
) -> Result<Alignment, AlignError> {
    let dp = full_matrix_checked(query, reference, scheme, check)?;
    let cigar = traceback(&dp, query, reference, scheme);
    Ok(Alignment { score: dp.final_score(), cigar })
}

/// The edit distance between two code slices (a convenience built on the
/// edit scheme: `distance = −score`).
#[must_use]
pub fn edit_distance(a: &[u8], b: &[u8]) -> u32 {
    (-score_only(a, b, &ScoringScheme::edit())) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::submat::SubstMatrix;

    fn dna(s: &str) -> Sequence {
        Sequence::from_text(Alphabet::Dna2, s).unwrap()
    }

    #[test]
    fn identical_sequences_score_zero_edit() {
        let s = dna("ACGTACGT");
        let a = align(&s, &s, &ScoringScheme::edit()).unwrap();
        assert_eq!(a.score, 0);
        assert_eq!(a.cigar.to_string(), "8=");
    }

    #[test]
    fn single_substitution() {
        let a = align(&dna("ACGT"), &dna("AGGT"), &ScoringScheme::edit()).unwrap();
        assert_eq!(a.score, -1);
        assert_eq!(a.cigar.to_string(), "1=1X2=");
    }

    #[test]
    fn single_insertion() {
        let a = align(&dna("ACGGT"), &dna("ACGT"), &ScoringScheme::edit()).unwrap();
        assert_eq!(a.score, -1);
        assert_eq!(a.cigar.query_len(), 5);
        assert_eq!(a.cigar.reference_len(), 4);
    }

    #[test]
    fn empty_rejected() {
        let e = Sequence::from_text(Alphabet::Dna2, "").unwrap();
        assert!(matches!(
            align(&e, &dna("A"), &ScoringScheme::edit()),
            Err(AlignError::EmptySequence)
        ));
    }

    #[test]
    fn alphabet_mismatch_rejected() {
        let p = Sequence::from_text(Alphabet::Protein, "ACG").unwrap();
        assert!(matches!(
            align(&p, &dna("ACG"), &ScoringScheme::edit()),
            Err(AlignError::AlphabetMismatch)
        ));
    }

    #[test]
    fn edit_distance_known_pairs() {
        let a = Sequence::from_text(Alphabet::Ascii, "kitten").unwrap();
        let b = Sequence::from_text(Alphabet::Ascii, "sitting").unwrap();
        assert_eq!(edit_distance(a.codes(), b.codes()), 3);
        assert_eq!(edit_distance(b.codes(), a.codes()), 3);
        assert_eq!(edit_distance(a.codes(), a.codes()), 0);
    }

    #[test]
    fn score_only_matches_full_matrix() {
        let q = dna("GATTACAGATTACA");
        let r = dna("GACTATAGATCAA");
        for scheme in [ScoringScheme::edit(), ScoringScheme::linear(2, -4, -4).unwrap()] {
            let dp = full_matrix(q.codes(), r.codes(), &scheme);
            assert_eq!(dp.final_score(), score_only(q.codes(), r.codes(), &scheme));
        }
    }

    #[test]
    fn last_row_matches_full_matrix() {
        let q = dna("ACGTAC");
        let r = dna("AGTACC");
        let scheme = ScoringScheme::linear(1, -2, -2).unwrap();
        let dp = full_matrix(q.codes(), r.codes(), &scheme);
        let row = last_row(q.codes(), r.codes(), &scheme);
        for (j, &v) in row.iter().enumerate() {
            assert_eq!(v, dp.get(q.len(), j), "column {j}");
        }
    }

    #[test]
    fn traceback_rescores_to_optimal() {
        let q = dna("GATTACA");
        let r = dna("GCATGCT");
        for scheme in [ScoringScheme::edit(), ScoringScheme::linear(3, -2, -3).unwrap()] {
            let a = align(&q, &r, &scheme).unwrap();
            a.verify(q.codes(), r.codes(), &scheme).unwrap();
        }
    }

    #[test]
    fn protein_alignment_with_blosum() {
        let scheme = ScoringScheme::matrix(SubstMatrix::blosum50(), -5).unwrap();
        let q = Sequence::from_text(Alphabet::Protein, "HEAGAWGHEE").unwrap();
        let r = Sequence::from_text(Alphabet::Protein, "PAWHEAE").unwrap();
        let a = align(&q, &r, &scheme).unwrap();
        a.verify(q.codes(), r.codes(), &scheme).unwrap();
        // Global alignment with strong gaps; score must match re-derivation.
        assert_eq!(a.score, full_matrix(q.codes(), r.codes(), &scheme).final_score());
    }

    #[test]
    fn paper_figure3_example() {
        // Figure 3 of the paper aligns two short proteins under BLOSUM62
        // with I = D = -4. We verify our golden model reproduces an optimal
        // score consistent with its own traceback (exact DP-matrix values in
        // the figure depend on its matrix variant).
        let scheme = ScoringScheme::matrix(SubstMatrix::blosum62(), -4).unwrap();
        let q = Sequence::from_text(Alphabet::Protein, "MKVLAA").unwrap();
        let r = Sequence::from_text(Alphabet::Protein, "MKWLSA").unwrap();
        let a = align(&q, &r, &scheme).unwrap();
        a.verify(q.codes(), r.codes(), &scheme).unwrap();
    }

    #[test]
    fn boundary_rows_follow_gap_penalties() {
        let scheme = ScoringScheme::linear_asym(1, -1, -2, -3).unwrap();
        let dp = full_matrix(&[0, 1], &[0, 1, 2], &scheme);
        assert_eq!(dp.get(1, 0), -2);
        assert_eq!(dp.get(2, 0), -4);
        assert_eq!(dp.get(0, 1), -3);
        assert_eq!(dp.get(0, 3), -9);
    }

    #[test]
    fn extreme_penalties_and_lengths_saturate_instead_of_overflowing() {
        // 5000 rows x a -1e6 gap penalty drives the border init past
        // i32::MIN (-5e9); without saturating arithmetic this wraps (and
        // panics in debug builds). The score must stay well-defined and
        // the three entry points must agree with each other.
        let scheme = ScoringScheme::linear(1, -1_000_000_000, -1_000_000_000).unwrap();
        let q = vec![0u8; 5000];
        let r = vec![1u8; 4000];
        let dp = full_matrix(&q, &r, &scheme);
        assert_eq!(dp.get(5000, 0), i32::MIN, "border init must saturate");
        assert_eq!(dp.final_score(), score_only(&q, &r, &scheme));
        let row = last_row(&q, &r, &scheme);
        assert_eq!(row[r.len()], dp.final_score());
        // The traceback must still terminate and cover both sequences.
        let cigar = traceback(&dp, &q, &r, &scheme);
        assert_eq!(cigar.query_len() as usize, q.len());
        assert_eq!(cigar.reference_len() as usize, r.len());
    }

    #[test]
    fn degenerate_inputs_are_well_defined() {
        let scheme = ScoringScheme::linear(1, -1, -2).unwrap();
        // Empty query: the whole reference is deleted.
        let a = align_codes(&[], &[0, 1, 2], &scheme);
        assert_eq!(a.score, 3 * scheme.gap_delete());
        assert_eq!(a.cigar.to_string(), "3D");
        a.verify(&[], &[0, 1, 2], &scheme).unwrap();
        // Empty reference: the whole query is inserted.
        let a = align_codes(&[0, 1], &[], &scheme);
        assert_eq!(a.score, 2 * scheme.gap_insert());
        assert_eq!(a.cigar.to_string(), "2I");
        // Both empty: zero score, empty CIGAR.
        let a = align_codes(&[], &[], &scheme);
        assert_eq!(a.score, 0);
        assert!(a.cigar.runs().is_empty());
        // Single symbols.
        let a = align_codes(&[1], &[1], &scheme);
        assert_eq!(a.score, 1);
        assert_eq!(a.cigar.to_string(), "1=");
        let a = align_codes(&[1], &[2], &scheme);
        a.verify(&[1], &[2], &scheme).unwrap();
        // query == reference: all matches, perfect score.
        let q: Vec<u8> = (0..64).map(|i| (i % 4) as u8).collect();
        let a = align_codes(&q, &q, &scheme);
        assert_eq!(a.score, 64);
        assert_eq!(a.cigar.to_string(), "64=");
    }

    #[test]
    fn dp_matrix_get_bounds() {
        let dp = full_matrix(&[0], &[0], &ScoringScheme::edit());
        assert_eq!(dp.rows(), 2);
        assert_eq!(dp.cols(), 2);
        let r = std::panic::catch_unwind(|| dp.get(2, 0));
        assert!(r.is_err());
    }
}
