//! Sequence alphabets and their packed encodings.
//!
//! SMX supports four configurations (paper §7): 2-bit DNA (edit model),
//! 4-bit DNA (gap model), 6-bit protein (substitution matrices), and 8-bit
//! ASCII text. The alphabet determines both the symbol encoding width and
//! the DP-element width (`EW`) used by the hardware.

use crate::error::AlignError;

/// A sequence alphabet with a fixed-width binary encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Alphabet {
    /// `{A, C, G, T}` packed in 2 bits. Used by the DNA-edit configuration.
    Dna2,
    /// `{A, C, G, T, N, ...}` packed in 4 bits (IUPAC subset). Used by the
    /// DNA-gap configuration.
    Dna4,
    /// The 26-letter amino-acid alphabet (`A`–`Z`, including ambiguity
    /// codes) packed in 6 bits. Used by the protein configuration.
    Protein,
    /// 7-bit ASCII text (8-bit element width). Used by the ASCII-edit
    /// configuration.
    Ascii,
}

impl Alphabet {
    /// All alphabets, in EW order.
    pub const ALL: [Alphabet; 4] =
        [Alphabet::Dna2, Alphabet::Dna4, Alphabet::Protein, Alphabet::Ascii];

    /// Bits used to encode one symbol (2, 4, 6, or 8).
    #[must_use]
    pub fn bits(self) -> u8 {
        match self {
            Alphabet::Dna2 => 2,
            Alphabet::Dna4 => 4,
            Alphabet::Protein => 6,
            Alphabet::Ascii => 8,
        }
    }

    /// Number of distinct symbols representable.
    #[must_use]
    pub fn cardinality(self) -> usize {
        match self {
            Alphabet::Dna2 => 4,
            Alphabet::Dna4 => 16,
            Alphabet::Protein => 26,
            Alphabet::Ascii => 128,
        }
    }

    /// Short lowercase name, used in errors and harness output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Alphabet::Dna2 => "dna2",
            Alphabet::Dna4 => "dna4",
            Alphabet::Protein => "protein",
            Alphabet::Ascii => "ascii",
        }
    }

    /// Encodes `symbol` into its code point.
    ///
    /// # Errors
    ///
    /// Returns [`AlignError::InvalidSymbol`] if the character is not part of
    /// this alphabet (lowercase nucleotides/amino acids are accepted and
    /// normalized to uppercase).
    pub fn encode(self, symbol: char) -> Result<u8, AlignError> {
        let up = symbol.to_ascii_uppercase();
        let err = || AlignError::InvalidSymbol { symbol, alphabet: self.name() };
        match self {
            Alphabet::Dna2 => match up {
                'A' => Ok(0),
                'C' => Ok(1),
                'G' => Ok(2),
                'T' => Ok(3),
                _ => Err(err()),
            },
            Alphabet::Dna4 => match up {
                'A' => Ok(0),
                'C' => Ok(1),
                'G' => Ok(2),
                'T' => Ok(3),
                'N' => Ok(4),
                'R' => Ok(5),
                'Y' => Ok(6),
                'S' => Ok(7),
                'W' => Ok(8),
                'K' => Ok(9),
                'M' => Ok(10),
                'B' => Ok(11),
                'D' => Ok(12),
                'H' => Ok(13),
                'V' => Ok(14),
                'U' => Ok(15),
                _ => Err(err()),
            },
            Alphabet::Protein => {
                if up.is_ascii_uppercase() {
                    Ok(up as u8 - b'A')
                } else {
                    Err(err())
                }
            }
            Alphabet::Ascii => {
                if symbol.is_ascii() {
                    Ok(symbol as u8)
                } else {
                    Err(err())
                }
            }
        }
    }

    /// Decodes a code point back into its character.
    ///
    /// # Errors
    ///
    /// Returns [`AlignError::InvalidCode`] if `code` is out of range.
    pub fn decode(self, code: u8) -> Result<char, AlignError> {
        let err = || AlignError::InvalidCode { code, alphabet: self.name() };
        match self {
            Alphabet::Dna2 => {
                [b'A', b'C', b'G', b'T'].get(code as usize).map(|&b| b as char).ok_or_else(err)
            }
            Alphabet::Dna4 => {
                b"ACGTNRYSWKMBDHVU".get(code as usize).map(|&b| b as char).ok_or_else(err)
            }
            Alphabet::Protein => {
                if code < 26 {
                    Ok((b'A' + code) as char)
                } else {
                    Err(err())
                }
            }
            Alphabet::Ascii => {
                if code < 128 {
                    Ok(code as char)
                } else {
                    Err(err())
                }
            }
        }
    }

    /// Whether `code` is in range for this alphabet.
    #[must_use]
    pub fn is_valid_code(self, code: u8) -> bool {
        (code as usize) < self.cardinality()
    }
}

impl std::fmt::Display for Alphabet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dna2_roundtrip() {
        for (i, c) in "ACGT".chars().enumerate() {
            assert_eq!(Alphabet::Dna2.encode(c).unwrap(), i as u8);
            assert_eq!(Alphabet::Dna2.decode(i as u8).unwrap(), c);
        }
    }

    #[test]
    fn dna2_rejects_n() {
        assert!(matches!(Alphabet::Dna2.encode('N'), Err(AlignError::InvalidSymbol { .. })));
    }

    #[test]
    fn dna4_accepts_iupac() {
        for c in "ACGTNRYSWKMBDHVU".chars() {
            let code = Alphabet::Dna4.encode(c).unwrap();
            assert_eq!(Alphabet::Dna4.decode(code).unwrap(), c);
        }
    }

    #[test]
    fn lowercase_normalized() {
        assert_eq!(Alphabet::Dna2.encode('a').unwrap(), 0);
        assert_eq!(Alphabet::Protein.encode('w').unwrap(), 22);
    }

    #[test]
    fn protein_covers_26_letters() {
        for (i, c) in ('A'..='Z').enumerate() {
            assert_eq!(Alphabet::Protein.encode(c).unwrap(), i as u8);
            assert_eq!(Alphabet::Protein.decode(i as u8).unwrap(), c);
        }
        assert!(Alphabet::Protein.decode(26).is_err());
    }

    #[test]
    fn ascii_roundtrip_all_bytes() {
        for b in 0u8..=127 {
            let c = b as char;
            assert_eq!(Alphabet::Ascii.encode(c).unwrap(), b);
            assert_eq!(Alphabet::Ascii.decode(b).unwrap(), c);
        }
    }

    #[test]
    fn ascii_rejects_non_ascii() {
        assert!(Alphabet::Ascii.encode('é').is_err());
    }

    #[test]
    fn bits_match_cardinality() {
        for a in Alphabet::ALL {
            assert!(a.cardinality() <= 1 << a.bits());
        }
    }

    #[test]
    fn code_validity_is_consistent_with_decode() {
        for a in Alphabet::ALL {
            for code in 0u8..=255 {
                assert_eq!(a.is_valid_code(code), a.decode(code).is_ok(), "{a} {code}");
                if code as usize >= a.cardinality() {
                    break;
                }
            }
        }
    }
}
