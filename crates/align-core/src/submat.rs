//! 26×26 amino-acid substitution matrices (BLOSUM50, BLOSUM62, PAM250).
//!
//! SMX stores substitution scores for the full 26-letter alphabet
//! (paper §4.2: a 26×26×6-bit memory). The standard matrices are defined
//! over the 20 canonical amino acids plus a handful of ambiguity codes; the
//! remaining letters (`B`, `J`, `Z`, `X`, `O`, `U`) are filled in with the
//! conventional derived values (averages of the residues they stand for, or
//! a neutral `-1` for fully ambiguous codes).

use crate::error::AlignError;

/// Canonical residue order used by published BLOSUM/PAM tables.
const RESIDUES: [u8; 20] = [
    b'A', b'R', b'N', b'D', b'C', b'Q', b'E', b'G', b'H', b'I', b'L', b'K', b'M', b'F', b'P', b'S',
    b'T', b'W', b'Y', b'V',
];

/// A symmetric 26×26 substitution matrix over the letters `A`–`Z`.
///
/// Scores are indexed by alphabet code (`0 = 'A'`, …, `25 = 'Z'`).
#[derive(Clone, PartialEq, Eq)]
pub struct SubstMatrix {
    name: &'static str,
    scores: [[i8; 26]; 26],
}

impl std::fmt::Debug for SubstMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubstMatrix")
            .field("name", &self.name)
            .field("max", &self.max_score())
            .field("min", &self.min_score())
            .finish()
    }
}

impl SubstMatrix {
    /// Builds a matrix from a 20×20 core table in [`RESIDUES`] order,
    /// deriving ambiguity rows/columns.
    fn from_core(name: &'static str, core: &[[i8; 20]; 20]) -> SubstMatrix {
        let mut scores = [[-1i8; 26]; 26];
        let idx = |c: u8| (c - b'A') as usize;
        for (i, &a) in RESIDUES.iter().enumerate() {
            for (j, &b) in RESIDUES.iter().enumerate() {
                scores[idx(a)][idx(b)] = core[i][j];
            }
        }
        // Conventional derived codes: B = N|D, Z = Q|E, J = I|L.
        let pairs: [(u8, u8, u8); 3] = [(b'B', b'N', b'D'), (b'Z', b'Q', b'E'), (b'J', b'I', b'L')];
        for &(amb, x, y) in &pairs {
            for &c in &RESIDUES {
                // Average, rounding toward negative infinity as NCBI does.
                let v =
                    (scores[idx(x)][idx(c)] as i16 + scores[idx(y)][idx(c)] as i16).div_euclid(2);
                scores[idx(amb)][idx(c)] = v as i8;
                scores[idx(c)][idx(amb)] = v as i8;
            }
        }
        // Ambiguity-vs-ambiguity and the fully ambiguous codes (X, O, U)
        // keep the neutral -1 default, except self-pairs of derived codes.
        for &(amb, x, y) in &pairs {
            let v = (scores[idx(x)][idx(x)] as i16 + scores[idx(y)][idx(y)] as i16).div_euclid(2);
            scores[idx(amb)][idx(amb)] = v as i8;
        }
        SubstMatrix { name, scores }
    }

    /// Builds a matrix from a full 26×26 score table (for matrices parsed
    /// from NCBI-format files or otherwise constructed at runtime).
    ///
    /// # Errors
    ///
    /// Returns [`AlignError::InvalidScoring`] if the table is asymmetric.
    pub fn from_scores(
        name: &'static str,
        scores: [[i8; 26]; 26],
    ) -> Result<SubstMatrix, AlignError> {
        let m = SubstMatrix { name, scores };
        m.check_symmetric()?;
        Ok(m)
    }

    /// Builds a uniform match/mismatch matrix (used to express the
    /// match-mismatch configuration through the substitution-matrix path).
    #[must_use]
    pub fn from_match_mismatch(match_score: i8, mismatch: i8) -> SubstMatrix {
        let mut scores = [[mismatch; 26]; 26];
        for (i, row) in scores.iter_mut().enumerate() {
            row[i] = match_score;
        }
        SubstMatrix { name: "match-mismatch", scores }
    }

    /// The BLOSUM50 matrix (default protein configuration, paper §7).
    #[must_use]
    pub fn blosum50() -> SubstMatrix {
        SubstMatrix::from_core("blosum50", &BLOSUM50_CORE)
    }

    /// The BLOSUM62 matrix (BLAST default).
    #[must_use]
    pub fn blosum62() -> SubstMatrix {
        SubstMatrix::from_core("blosum62", &BLOSUM62_CORE)
    }

    /// The PAM250 matrix.
    #[must_use]
    pub fn pam250() -> SubstMatrix {
        SubstMatrix::from_core("pam250", &PAM250_CORE)
    }

    /// Matrix name (for example `"blosum50"`).
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Substitution score for alphabet codes `a`, `b`.
    ///
    /// # Panics
    ///
    /// Panics if either code is ≥ 26; protein sequences produced through
    /// [`crate::Alphabet::Protein`] are always in range.
    #[must_use]
    pub fn score(&self, a: u8, b: u8) -> i32 {
        self.scores[a as usize][b as usize] as i32
    }

    /// Largest score in the matrix (`S_max`, used for the theta bound).
    #[must_use]
    pub fn max_score(&self) -> i32 {
        self.scores.iter().flatten().copied().max().unwrap_or(0) as i32
    }

    /// Smallest score in the matrix.
    #[must_use]
    pub fn min_score(&self) -> i32 {
        self.scores.iter().flatten().copied().min().unwrap_or(0) as i32
    }

    /// Verifies symmetry; returns the first asymmetric pair if any.
    ///
    /// # Errors
    ///
    /// Returns [`AlignError::InvalidScoring`] naming the offending pair.
    pub fn check_symmetric(&self) -> Result<(), AlignError> {
        for a in 0..26 {
            for b in (a + 1)..26 {
                if self.scores[a][b] != self.scores[b][a] {
                    return Err(AlignError::InvalidScoring(format!(
                        "matrix {} is asymmetric at ({}, {})",
                        self.name,
                        (b'A' + a as u8) as char,
                        (b'A' + b as u8) as char
                    )));
                }
            }
        }
        Ok(())
    }

    /// Raw row access (used by the ISA model's SRAM layout).
    #[must_use]
    pub fn row(&self, a: u8) -> &[i8; 26] {
        &self.scores[a as usize]
    }
}

/// BLOSUM50 20×20 core in `ARNDCQEGHILKMFPSTWYV` order.
#[rustfmt::skip]
const BLOSUM50_CORE: [[i8; 20]; 20] = [
    [ 5,-2,-1,-2,-1,-1,-1, 0,-2,-1,-2,-1,-1,-3,-1, 1, 0,-3,-2, 0],
    [-2, 7,-1,-2,-4, 1, 0,-3, 0,-4,-3, 3,-2,-3,-3,-1,-1,-3,-1,-3],
    [-1,-1, 7, 2,-2, 0, 0, 0, 1,-3,-4, 0,-2,-4,-2, 1, 0,-4,-2,-3],
    [-2,-2, 2, 8,-4, 0, 2,-1,-1,-4,-4,-1,-4,-5,-1, 0,-1,-5,-3,-4],
    [-1,-4,-2,-4,13,-3,-3,-3,-3,-2,-2,-3,-2,-2,-4,-1,-1,-5,-3,-1],
    [-1, 1, 0, 0,-3, 7, 2,-2, 1,-3,-2, 2, 0,-4,-1, 0,-1,-1,-1,-3],
    [-1, 0, 0, 2,-3, 2, 6,-3, 0,-4,-3, 1,-2,-3,-1,-1,-1,-3,-2,-3],
    [ 0,-3, 0,-1,-3,-2,-3, 8,-2,-4,-4,-2,-3,-4,-2, 0,-2,-3,-3,-4],
    [-2, 0, 1,-1,-3, 1, 0,-2,10,-4,-3, 0,-1,-1,-2,-1,-2,-3, 2,-4],
    [-1,-4,-3,-4,-2,-3,-4,-4,-4, 5, 2,-3, 2, 0,-3,-3,-1,-3,-1, 4],
    [-2,-3,-4,-4,-2,-2,-3,-4,-3, 2, 5,-3, 3, 1,-4,-3,-1,-2,-1, 1],
    [-1, 3, 0,-1,-3, 2, 1,-2, 0,-3,-3, 6,-2,-4,-1, 0,-1,-3,-2,-3],
    [-1,-2,-2,-4,-2, 0,-2,-3,-1, 2, 3,-2, 7, 0,-3,-2,-1,-1, 0, 1],
    [-3,-3,-4,-5,-2,-4,-3,-4,-1, 0, 1,-4, 0, 8,-4,-3,-2, 1, 4,-1],
    [-1,-3,-2,-1,-4,-1,-1,-2,-2,-3,-4,-1,-3,-4,10,-1,-1,-4,-3,-3],
    [ 1,-1, 1, 0,-1, 0,-1, 0,-1,-3,-3, 0,-2,-3,-1, 5, 2,-4,-2,-2],
    [ 0,-1, 0,-1,-1,-1,-1,-2,-2,-1,-1,-1,-1,-2,-1, 2, 5,-3,-2, 0],
    [-3,-3,-4,-5,-5,-1,-3,-3,-3,-3,-2,-3,-1, 1,-4,-4,-3,15, 2,-3],
    [-2,-1,-2,-3,-3,-1,-2,-3, 2,-1,-1,-2, 0, 4,-3,-2,-2, 2, 8,-1],
    [ 0,-3,-3,-4,-1,-3,-3,-4,-4, 4, 1,-3, 1,-1,-3,-2, 0,-3,-1, 5],
];

/// BLOSUM62 20×20 core in `ARNDCQEGHILKMFPSTWYV` order.
#[rustfmt::skip]
const BLOSUM62_CORE: [[i8; 20]; 20] = [
    [ 4,-1,-2,-2, 0,-1,-1, 0,-2,-1,-1,-1,-1,-2,-1, 1, 0,-3,-2, 0],
    [-1, 5, 0,-2,-3, 1, 0,-2, 0,-3,-2, 2,-1,-3,-2,-1,-1,-3,-2,-3],
    [-2, 0, 6, 1,-3, 0, 0, 0, 1,-3,-3, 0,-2,-3,-2, 1, 0,-4,-2,-3],
    [-2,-2, 1, 6,-3, 0, 2,-1,-1,-3,-4,-1,-3,-3,-1, 0,-1,-4,-3,-3],
    [ 0,-3,-3,-3, 9,-3,-4,-3,-3,-1,-1,-3,-1,-2,-3,-1,-1,-2,-2,-1],
    [-1, 1, 0, 0,-3, 5, 2,-2, 0,-3,-2, 1, 0,-3,-1, 0,-1,-2,-1,-2],
    [-1, 0, 0, 2,-4, 2, 5,-2, 0,-3,-3, 1,-2,-3,-1, 0,-1,-3,-2,-2],
    [ 0,-2, 0,-1,-3,-2,-2, 6,-2,-4,-4,-2,-3,-3,-2, 0,-2,-2,-3,-3],
    [-2, 0, 1,-1,-3, 0, 0,-2, 8,-3,-3,-1,-2,-1,-2,-1,-2,-2, 2,-3],
    [-1,-3,-3,-3,-1,-3,-3,-4,-3, 4, 2,-3, 1, 0,-3,-2,-1,-3,-1, 3],
    [-1,-2,-3,-4,-1,-2,-3,-4,-3, 2, 4,-2, 2, 0,-3,-2,-1,-2,-1, 1],
    [-1, 2, 0,-1,-3, 1, 1,-2,-1,-3,-2, 5,-1,-3,-1, 0,-1,-3,-2,-2],
    [-1,-1,-2,-3,-1, 0,-2,-3,-2, 1, 2,-1, 5, 0,-2,-1,-1,-1,-1, 1],
    [-2,-3,-3,-3,-2,-3,-3,-3,-1, 0, 0,-3, 0, 6,-4,-2,-2, 1, 3,-1],
    [-1,-2,-2,-1,-3,-1,-1,-2,-2,-3,-3,-1,-2,-4, 7,-1,-1,-4,-3,-2],
    [ 1,-1, 1, 0,-1, 0, 0, 0,-1,-2,-2, 0,-1,-2,-1, 4, 1,-3,-2,-2],
    [ 0,-1, 0,-1,-1,-1,-1,-2,-2,-1,-1,-1,-1,-2,-1, 1, 5,-2,-2, 0],
    [-3,-3,-4,-4,-2,-2,-3,-2,-2,-3,-2,-3,-1, 1,-4,-3,-2,11, 2,-3],
    [-2,-2,-2,-3,-2,-1,-2,-3, 2,-1,-1,-2,-1, 3,-3,-2,-2, 2, 7,-1],
    [ 0,-3,-3,-3,-1,-2,-2,-3,-3, 3, 1,-2, 1,-1,-2,-2, 0,-3,-1, 4],
];

/// PAM250 20×20 core in `ARNDCQEGHILKMFPSTWYV` order.
#[rustfmt::skip]
const PAM250_CORE: [[i8; 20]; 20] = [
    [ 2,-2, 0, 0,-2, 0, 0, 1,-1,-1,-2,-1,-1,-3, 1, 1, 1,-6,-3, 0],
    [-2, 6, 0,-1,-4, 1,-1,-3, 2,-2,-3, 3, 0,-4, 0, 0,-1, 2,-4,-2],
    [ 0, 0, 2, 2,-4, 1, 1, 0, 2,-2,-3, 1,-2,-3, 0, 1, 0,-4,-2,-2],
    [ 0,-1, 2, 4,-5, 2, 3, 1, 1,-2,-4, 0,-3,-6,-1, 0, 0,-7,-4,-2],
    [-2,-4,-4,-5,12,-5,-5,-3,-3,-2,-6,-5,-5,-4,-3, 0,-2,-8, 0,-2],
    [ 0, 1, 1, 2,-5, 4, 2,-1, 3,-2,-2, 1,-1,-5, 0,-1,-1,-5,-4,-2],
    [ 0,-1, 1, 3,-5, 2, 4, 0, 1,-2,-3, 0,-2,-5,-1, 0, 0,-7,-4,-2],
    [ 1,-3, 0, 1,-3,-1, 0, 5,-2,-3,-4,-2,-3,-5, 0, 1, 0,-7,-5,-1],
    [-1, 2, 2, 1,-3, 3, 1,-2, 6,-2,-2, 0,-2,-2, 0,-1,-1,-3, 0,-2],
    [-1,-2,-2,-2,-2,-2,-2,-3,-2, 5, 2,-2, 2, 1,-2,-1, 0,-5,-1, 4],
    [-2,-3,-3,-4,-6,-2,-3,-4,-2, 2, 6,-3, 4, 2,-3,-3,-2,-2,-1, 2],
    [-1, 3, 1, 0,-5, 1, 0,-2, 0,-2,-3, 5, 0,-5,-1, 0, 0,-3,-4,-2],
    [-1, 0,-2,-3,-5,-1,-2,-3,-2, 2, 4, 0, 6, 0,-2,-2,-1,-4,-2, 2],
    [-3,-4,-3,-6,-4,-5,-5,-5,-2, 1, 2,-5, 0, 9,-5,-3,-3, 0, 7,-1],
    [ 1, 0, 0,-1,-3, 0,-1, 0, 0,-2,-3,-1,-2,-5, 6, 1, 0,-6,-5,-1],
    [ 1, 0, 1, 0, 0,-1, 0, 1,-1,-1,-3, 0,-2,-3, 1, 2, 1,-2,-3,-1],
    [ 1,-1, 0, 0,-2,-1, 0, 0,-1, 0,-2, 0,-1,-3, 0, 1, 3,-5,-3, 0],
    [-6, 2,-4,-7,-8,-5,-7,-7,-3,-5,-2,-3,-4, 0,-6,-2,-5,17, 0,-6],
    [-3,-4,-2,-4, 0,-4,-4,-5, 0,-1,-1,-4,-2, 7,-5,-3,-3, 0,10,-2],
    [ 0,-2,-2,-2,-2,-2,-2,-1,-2, 4, 2,-2, 2,-1,-1,-1, 0,-6,-2, 4],
];

#[cfg(test)]
mod tests {
    use super::*;

    fn code(c: char) -> u8 {
        c as u8 - b'A'
    }

    #[test]
    fn all_matrices_are_symmetric() {
        for m in [SubstMatrix::blosum50(), SubstMatrix::blosum62(), SubstMatrix::pam250()] {
            m.check_symmetric().unwrap();
        }
    }

    #[test]
    fn blosum50_known_values() {
        let m = SubstMatrix::blosum50();
        assert_eq!(m.score(code('W'), code('W')), 15);
        assert_eq!(m.score(code('A'), code('A')), 5);
        assert_eq!(m.score(code('A'), code('R')), -2);
        assert_eq!(m.score(code('D'), code('F')), -5);
        assert_eq!(m.max_score(), 15);
    }

    #[test]
    fn blosum62_known_values() {
        let m = SubstMatrix::blosum62();
        assert_eq!(m.score(code('W'), code('W')), 11);
        assert_eq!(m.score(code('C'), code('C')), 9);
        assert_eq!(m.score(code('E'), code('D')), 2);
        assert_eq!(m.max_score(), 11);
    }

    #[test]
    fn pam250_known_values() {
        let m = SubstMatrix::pam250();
        assert_eq!(m.score(code('W'), code('W')), 17);
        assert_eq!(m.score(code('C'), code('W')), -8);
        assert_eq!(m.max_score(), 17);
    }

    #[test]
    fn derived_codes_average_their_residues() {
        let m = SubstMatrix::blosum62();
        // B vs A = avg(N vs A, D vs A) = avg(-2, -2) = -2.
        assert_eq!(m.score(code('B'), code('A')), -2);
        // Z vs E = avg(Q vs E, E vs E) = avg(2, 5) = 3 (floor).
        assert_eq!(m.score(code('Z'), code('E')), 3);
    }

    #[test]
    fn fully_ambiguous_codes_are_neutral() {
        let m = SubstMatrix::blosum50();
        for c in 0..26u8 {
            if c == code('X') || c == code('O') || c == code('U') {
                continue;
            }
            assert_eq!(m.score(code('X'), c), -1);
            assert_eq!(m.score(code('O'), c), -1);
        }
    }

    #[test]
    fn match_mismatch_matrix() {
        let m = SubstMatrix::from_match_mismatch(2, -3);
        assert_eq!(m.score(3, 3), 2);
        assert_eq!(m.score(3, 4), -3);
        m.check_symmetric().unwrap();
        assert_eq!(m.max_score(), 2);
        assert_eq!(m.min_score(), -3);
    }

    #[test]
    fn blosum50_fits_paper_bit_budget() {
        // Paper §4.3.3: matrices contain penalties in [-6, 15].
        let m = SubstMatrix::blosum50();
        assert!(m.min_score() >= -6);
        assert!(m.max_score() <= 15);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", SubstMatrix::blosum50()).is_empty());
    }
}
