//! Scoring schemes: edit, linear gap, and substitution-matrix models
//! (paper §2.2).
//!
//! All schemes are *maximizing*: gap penalties and mismatches are
//! non-positive, matches are non-negative. Edit distance is expressed as a
//! maximal score (`M = 0, X = I = D = −1`), so an edit distance of `d`
//! appears as a score of `−d`.

use crate::error::AlignError;
use crate::submat::SubstMatrix;

/// A pairwise scoring scheme.
///
/// The `Matrix` variant embeds the 676-byte table directly: schemes are
/// constructed once per run and passed by reference, so the size skew is
/// intentional (no indirection on the score hot path).
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ScoringScheme {
    /// Unit-cost edit model: match 0, mismatch −1, gaps −1.
    #[default]
    Edit,
    /// Linear gap model with uniform match/mismatch scores.
    Linear {
        /// Score for a match (≥ 0).
        match_score: i32,
        /// Score for a mismatch (≤ 0).
        mismatch: i32,
        /// Penalty per inserted query character (≤ 0), `I` in the paper.
        gap_insert: i32,
        /// Penalty per deleted reference character (≤ 0), `D` in the paper.
        gap_delete: i32,
    },
    /// Substitution-matrix model (protein alignment).
    Matrix {
        /// The 26×26 substitution matrix.
        matrix: SubstMatrix,
        /// Penalty per inserted query character (≤ 0).
        gap_insert: i32,
        /// Penalty per deleted reference character (≤ 0).
        gap_delete: i32,
    },
}

impl ScoringScheme {
    /// The unit-cost edit model.
    #[must_use]
    pub fn edit() -> ScoringScheme {
        ScoringScheme::Edit
    }

    /// A symmetric linear-gap scheme.
    ///
    /// # Errors
    ///
    /// Returns [`AlignError::InvalidScoring`] if `match_score < 0`,
    /// `mismatch > 0`, or `gap >= 0` (a zero gap would break the shifted
    /// differential encoding).
    pub fn linear(match_score: i32, mismatch: i32, gap: i32) -> Result<ScoringScheme, AlignError> {
        ScoringScheme::linear_asym(match_score, mismatch, gap, gap)
    }

    /// A linear-gap scheme with distinct insertion/deletion penalties.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ScoringScheme::linear`], checked per gap.
    pub fn linear_asym(
        match_score: i32,
        mismatch: i32,
        gap_insert: i32,
        gap_delete: i32,
    ) -> Result<ScoringScheme, AlignError> {
        if match_score < 0 {
            return Err(AlignError::InvalidScoring(format!(
                "match score must be non-negative, got {match_score}"
            )));
        }
        if mismatch > 0 {
            return Err(AlignError::InvalidScoring(format!(
                "mismatch score must be non-positive, got {mismatch}"
            )));
        }
        if gap_insert >= 0 || gap_delete >= 0 {
            return Err(AlignError::InvalidScoring(format!(
                "gap penalties must be negative, got I={gap_insert} D={gap_delete}"
            )));
        }
        Ok(ScoringScheme::Linear { match_score, mismatch, gap_insert, gap_delete })
    }

    /// A substitution-matrix scheme with a symmetric gap penalty.
    ///
    /// # Errors
    ///
    /// Returns [`AlignError::InvalidScoring`] if `gap >= 0` or the matrix is
    /// asymmetric.
    pub fn matrix(matrix: SubstMatrix, gap: i32) -> Result<ScoringScheme, AlignError> {
        if gap >= 0 {
            return Err(AlignError::InvalidScoring(format!(
                "gap penalty must be negative, got {gap}"
            )));
        }
        matrix.check_symmetric()?;
        Ok(ScoringScheme::Matrix { matrix, gap_insert: gap, gap_delete: gap })
    }

    /// Substitution score `S(a, b)` for two alphabet codes.
    #[must_use]
    pub fn score(&self, a: u8, b: u8) -> i32 {
        match self {
            ScoringScheme::Edit => {
                if a == b {
                    0
                } else {
                    -1
                }
            }
            ScoringScheme::Linear { match_score, mismatch, .. } => {
                if a == b {
                    *match_score
                } else {
                    *mismatch
                }
            }
            ScoringScheme::Matrix { matrix, .. } => matrix.score(a, b),
        }
    }

    /// Insertion penalty `I` (per query character consumed vertically).
    #[must_use]
    pub fn gap_insert(&self) -> i32 {
        match self {
            ScoringScheme::Edit => -1,
            ScoringScheme::Linear { gap_insert, .. } | ScoringScheme::Matrix { gap_insert, .. } => {
                *gap_insert
            }
        }
    }

    /// Deletion penalty `D` (per reference character consumed horizontally).
    #[must_use]
    pub fn gap_delete(&self) -> i32 {
        match self {
            ScoringScheme::Edit => -1,
            ScoringScheme::Linear { gap_delete, .. } | ScoringScheme::Matrix { gap_delete, .. } => {
                *gap_delete
            }
        }
    }

    /// Largest substitution score `S_max`.
    #[must_use]
    pub fn s_max(&self) -> i32 {
        match self {
            ScoringScheme::Edit => 0,
            ScoringScheme::Linear { match_score, .. } => *match_score,
            ScoringScheme::Matrix { matrix, .. } => matrix.max_score(),
        }
    }

    /// Smallest substitution score `S_min`.
    #[must_use]
    pub fn s_min(&self) -> i32 {
        match self {
            ScoringScheme::Edit => -1,
            ScoringScheme::Linear { mismatch, .. } => *mismatch,
            ScoringScheme::Matrix { matrix, .. } => matrix.min_score(),
        }
    }

    /// The differential-encoding range bound
    /// `theta = S_max − I − D` (paper §4.1).
    #[must_use]
    pub fn theta(&self) -> i32 {
        self.s_max() - self.gap_insert() - self.gap_delete()
    }

    /// Shifted substitution score `S'(a, b) = S(a, b) − I − D ∈ [0, theta]`
    /// (paper Eq. 5–6).
    #[must_use]
    pub fn shifted_score(&self, a: u8, b: u8) -> i32 {
        self.score(a, b) - self.gap_insert() - self.gap_delete()
    }

    /// Checks the structural requirement of the shifted encoding:
    /// `S_min − I − D ≥ 0`, i.e. every shifted score is non-negative.
    ///
    /// # Errors
    ///
    /// Returns [`AlignError::InvalidScoring`] when some shifted score would
    /// be negative (the scheme cannot be differentially encoded).
    pub fn check_encodable(&self) -> Result<(), AlignError> {
        let smin_shifted = self.s_min() - self.gap_insert() - self.gap_delete();
        if smin_shifted < 0 {
            return Err(AlignError::InvalidScoring(format!(
                "shifted minimum score is negative ({smin_shifted}); \
                 increase gap penalties or raise S_min"
            )));
        }
        Ok(())
    }

    /// Whether this scheme uses a substitution matrix (routes S′ generation
    /// through the `smx_submat` memory rather than the comparator array).
    #[must_use]
    pub fn uses_matrix(&self) -> bool {
        matches!(self, ScoringScheme::Matrix { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edit_model_values() {
        let s = ScoringScheme::edit();
        assert_eq!(s.score(1, 1), 0);
        assert_eq!(s.score(1, 2), -1);
        assert_eq!(s.gap_insert(), -1);
        assert_eq!(s.gap_delete(), -1);
        assert_eq!(s.theta(), 2);
        s.check_encodable().unwrap();
    }

    #[test]
    fn ksw2_defaults_theta() {
        let s = ScoringScheme::linear(2, -4, -4).unwrap();
        assert_eq!(s.theta(), 10);
        s.check_encodable().unwrap();
        assert_eq!(s.shifted_score(0, 0), 10);
        assert_eq!(s.shifted_score(0, 1), 4);
    }

    #[test]
    fn blosum50_gap5_theta() {
        let s = ScoringScheme::matrix(SubstMatrix::blosum50(), -5).unwrap();
        assert_eq!(s.theta(), 15 + 10);
        s.check_encodable().unwrap();
    }

    #[test]
    fn rejects_positive_gap() {
        assert!(ScoringScheme::linear(1, -1, 1).is_err());
        assert!(ScoringScheme::linear(1, -1, 0).is_err());
        assert!(ScoringScheme::matrix(SubstMatrix::blosum50(), 0).is_err());
    }

    #[test]
    fn rejects_negative_match() {
        assert!(ScoringScheme::linear(-1, -1, -1).is_err());
    }

    #[test]
    fn rejects_positive_mismatch() {
        assert!(ScoringScheme::linear(1, 1, -1).is_err());
    }

    #[test]
    fn unencodable_scheme_detected() {
        // BLOSUM50 min is -5; gaps of -2 give shifted min of -1.
        let s = ScoringScheme::matrix(SubstMatrix::blosum50(), -2).unwrap();
        assert!(s.check_encodable().is_err());
    }

    #[test]
    fn shifted_scores_in_range() {
        let s = ScoringScheme::matrix(SubstMatrix::blosum50(), -5).unwrap();
        for a in 0..26 {
            for b in 0..26 {
                let v = s.shifted_score(a, b);
                assert!(v >= 0 && v <= s.theta(), "S'({a},{b}) = {v}");
            }
        }
    }

    #[test]
    fn default_is_edit() {
        assert_eq!(ScoringScheme::default(), ScoringScheme::Edit);
    }
}
