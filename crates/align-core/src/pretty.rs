//! Human-readable alignment rendering: the three-row query / match-line /
//! reference layout alignment tools print.

use crate::cigar::{Cigar, Op};
use crate::error::AlignError;
use crate::sequence::Sequence;

/// Renders an alignment as wrapped three-row blocks:
///
/// ```text
/// query      1 GATTACAGATT-ACA 14
///              ||||||.|||| |||
/// reference  1 GATTACCGATTTACA 15
/// ```
///
/// `width` is the number of alignment columns per block (clamped to a
/// sane minimum of 10).
///
/// # Errors
///
/// Returns [`AlignError::Internal`] if the CIGAR does not fit the
/// sequences or mislabels an operation.
pub fn render(
    cigar: &Cigar,
    query: &Sequence,
    reference: &Sequence,
    width: usize,
) -> Result<String, AlignError> {
    let width = width.max(10);
    let (mut qi, mut rj) = (0usize, 0usize);
    let mut q_row = String::new();
    let mut m_row = String::new();
    let mut r_row = String::new();
    let q_text: Vec<char> = query.to_text().chars().collect();
    let r_text: Vec<char> = reference.to_text().chars().collect();
    for op in cigar.iter_ops() {
        match op {
            Op::Match | Op::Mismatch => {
                let (a, b) = (
                    *q_text.get(qi).ok_or_else(|| overrun("query"))?,
                    *r_text.get(rj).ok_or_else(|| overrun("reference"))?,
                );
                if (a == b) != (op == Op::Match) {
                    return Err(AlignError::Internal(format!("cigar mislabels column at q[{qi}]")));
                }
                q_row.push(a);
                m_row.push(if op == Op::Match { '|' } else { '.' });
                r_row.push(b);
                qi += 1;
                rj += 1;
            }
            Op::Insert => {
                q_row.push(*q_text.get(qi).ok_or_else(|| overrun("query"))?);
                m_row.push(' ');
                r_row.push('-');
                qi += 1;
            }
            Op::Delete => {
                q_row.push('-');
                m_row.push(' ');
                r_row.push(*r_text.get(rj).ok_or_else(|| overrun("reference"))?);
                rj += 1;
            }
        }
    }
    if qi != query.len() || rj != reference.len() {
        return Err(AlignError::Internal("cigar does not consume the sequences".into()));
    }

    // Wrap into blocks with 1-based coordinates.
    let cols: Vec<(char, char, char)> =
        q_row.chars().zip(m_row.chars()).zip(r_row.chars()).map(|((q, m), r)| (q, m, r)).collect();
    let mut out = String::new();
    let (mut q_pos, mut r_pos) = (1usize, 1usize);
    for block in cols.chunks(width) {
        let q_str: String = block.iter().map(|c| c.0).collect();
        let m_str: String = block.iter().map(|c| c.1).collect();
        let r_str: String = block.iter().map(|c| c.2).collect();
        let q_consumed = block.iter().filter(|c| c.0 != '-').count();
        let r_consumed = block.iter().filter(|c| c.2 != '-').count();
        let q_end = if q_consumed > 0 { q_pos + q_consumed - 1 } else { q_pos };
        let r_end = if r_consumed > 0 { r_pos + r_consumed - 1 } else { r_pos };
        out.push_str(&format!("query     {q_pos:>6} {q_str} {q_end}\n"));
        out.push_str(&format!("                 {m_str}\n"));
        out.push_str(&format!("reference {r_pos:>6} {r_str} {r_end}\n\n"));
        q_pos += q_consumed;
        r_pos += r_consumed;
    }
    Ok(out)
}

fn overrun(which: &str) -> AlignError {
    AlignError::Internal(format!("cigar overruns the {which} sequence"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::dp;
    use crate::scoring::ScoringScheme;

    #[test]
    fn renders_match_mismatch_and_gaps() {
        let q = Sequence::from_text(Alphabet::Dna2, "GATTACAGATTACA").unwrap();
        let r = Sequence::from_text(Alphabet::Dna2, "GATTACCGATTTACA").unwrap();
        let aln = dp::align(&q, &r, &ScoringScheme::edit()).unwrap();
        let text = render(&aln.cigar, &q, &r, 60).unwrap();
        assert!(text.contains('|'), "{text}");
        assert!(text.contains('-') || text.contains('.'), "{text}");
        assert!(text.starts_with("query"));
    }

    #[test]
    fn wrapping_produces_multiple_blocks() {
        let q = Sequence::from_text(Alphabet::Dna2, &"ACGT".repeat(20)).unwrap();
        let aln = dp::align(&q, &q, &ScoringScheme::edit()).unwrap();
        let text = render(&aln.cigar, &q, &q, 25).unwrap();
        assert_eq!(text.matches("query").count(), 4); // 80 cols / 25
    }

    #[test]
    fn coordinates_advance_across_blocks() {
        let q = Sequence::from_text(Alphabet::Dna2, &"A".repeat(30)).unwrap();
        let aln = dp::align(&q, &q, &ScoringScheme::edit()).unwrap();
        let text = render(&aln.cigar, &q, &q, 10).unwrap();
        assert!(text.contains("query          1"));
        assert!(text.contains("query         11"));
        assert!(text.contains("query         21"));
    }

    #[test]
    fn mismatched_cigar_rejected() {
        let q = Sequence::from_text(Alphabet::Dna2, "ACGT").unwrap();
        let r = Sequence::from_text(Alphabet::Dna2, "ACG").unwrap();
        let bad: Cigar = "4=".parse().unwrap();
        assert!(render(&bad, &q, &r, 60).is_err());
    }
}
