//! Affine-gap (Gotoh) golden model — an extension beyond the paper's
//! linear-gap hardware.
//!
//! Practical read aligners (Minimap2/KSW2) use gap-affine penalties
//! `open + k·extend`; the paper's SMX hardware implements the linear
//! model and lists richer gap models as the flexibility frontier. This
//! module provides the exact three-matrix Gotoh recurrence as a golden
//! model so future SMX extensions (and the software baselines) can be
//! validated against it.

use crate::cigar::{Alignment, Cigar, Op};
use crate::error::AlignError;

/// Affine-gap scoring: `gap(k) = gap_open + k·gap_extend` (both ≤ 0,
/// charged in addition per gap segment and per gap character).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AffineScheme {
    /// Match score (≥ 0).
    pub match_score: i32,
    /// Mismatch score (≤ 0).
    pub mismatch: i32,
    /// Penalty for opening a gap segment (≤ 0).
    pub gap_open: i32,
    /// Penalty per gap character (≤ 0, < 0 required).
    pub gap_extend: i32,
}

impl AffineScheme {
    /// Builds a validated scheme.
    ///
    /// # Errors
    ///
    /// Returns [`AlignError::InvalidScoring`] on sign violations.
    pub fn new(
        match_score: i32,
        mismatch: i32,
        gap_open: i32,
        gap_extend: i32,
    ) -> Result<AffineScheme, AlignError> {
        if match_score < 0 || mismatch > 0 || gap_open > 0 || gap_extend >= 0 {
            return Err(AlignError::InvalidScoring(format!(
                "affine scheme signs invalid: M={match_score} X={mismatch} O={gap_open} E={gap_extend}"
            )));
        }
        Ok(AffineScheme { match_score, mismatch, gap_open, gap_extend })
    }

    /// The Minimap2 short-read defaults (2, -4, -4, -2).
    #[must_use]
    pub fn minimap2() -> AffineScheme {
        AffineScheme { match_score: 2, mismatch: -4, gap_open: -4, gap_extend: -2 }
    }

    fn score(&self, a: u8, b: u8) -> i32 {
        if a == b {
            self.match_score
        } else {
            self.mismatch
        }
    }

    /// Total penalty of a gap of `k` characters (saturating: pathological
    /// lengths × penalties clamp instead of wrapping).
    #[must_use]
    pub fn gap(&self, k: u32) -> i32 {
        if k == 0 {
            0
        } else {
            self.gap_open.saturating_add((k as i32).saturating_mul(self.gap_extend))
        }
    }

    /// `gap_open + gap_extend`, saturating — the cost of starting a new
    /// gap segment, shared by the fill and traceback recurrences.
    fn open_extend(&self) -> i32 {
        self.gap_open.saturating_add(self.gap_extend)
    }
}

const NEG: i32 = i32::MIN / 4;

/// Computes the optimal global affine-gap alignment (Gotoh).
///
/// # Errors
///
/// Returns [`AlignError::EmptySequence`] for empty inputs.
#[allow(clippy::needless_range_loop)] // index loops mirror the recurrences
pub fn affine_align(
    query: &[u8],
    reference: &[u8],
    scheme: &AffineScheme,
) -> Result<Alignment, AlignError> {
    if query.is_empty() || reference.is_empty() {
        return Err(AlignError::EmptySequence);
    }
    let (m, n) = (query.len(), reference.len());
    let w = n + 1;
    // Three layers: M (diag), I (gap in reference, consumes query),
    // D (gap in query, consumes reference).
    let mut mm = vec![NEG; (m + 1) * w];
    let mut ii = vec![NEG; (m + 1) * w];
    let mut dd = vec![NEG; (m + 1) * w];
    mm[0] = 0;
    for j in 1..=n {
        dd[j] = scheme.gap(j as u32);
    }
    for i in 1..=m {
        ii[i * w] = scheme.gap(i as u32);
    }
    for i in 1..=m {
        for j in 1..=n {
            let idx = i * w + j;
            let up = (i - 1) * w + j;
            let left = i * w + j - 1;
            let diag = (i - 1) * w + j - 1;
            let s = scheme.score(query[i - 1], reference[j - 1]);
            let oe = scheme.open_extend();
            let best_prev = mm[diag].max(ii[diag]).max(dd[diag]);
            mm[idx] = if best_prev <= NEG / 2 { NEG } else { best_prev.saturating_add(s) };
            ii[idx] = (mm[up].saturating_add(oe))
                .max(ii[up].saturating_add(scheme.gap_extend))
                .max(dd[up].saturating_add(oe))
                .max(NEG);
            dd[idx] = (mm[left].saturating_add(oe))
                .max(dd[left].saturating_add(scheme.gap_extend))
                .max(ii[left].saturating_add(oe))
                .max(NEG);
        }
    }
    let last = m * w + n;
    let score = mm[last].max(ii[last]).max(dd[last]);

    // Traceback across layers: 0 = M, 1 = I, 2 = D.
    let mut layer = if score == mm[last] {
        0u8
    } else if score == ii[last] {
        1
    } else {
        2
    };
    let (mut i, mut j) = (m, n);
    let mut cigar = Cigar::new();
    while i > 0 || j > 0 {
        let idx = i * w + j;
        match layer {
            0 => {
                debug_assert!(i > 0 && j > 0, "M layer at border");
                cigar.push(if query[i - 1] == reference[j - 1] { Op::Match } else { Op::Mismatch });
                let diag = (i - 1) * w + j - 1;
                let v = mm[idx].saturating_sub(scheme.score(query[i - 1], reference[j - 1]));
                layer = if v == mm[diag] {
                    0
                } else if v == ii[diag] {
                    1
                } else {
                    2
                };
                i -= 1;
                j -= 1;
            }
            1 => {
                debug_assert!(i > 0, "I layer at top border");
                cigar.push(Op::Insert);
                let up = (i - 1) * w + j;
                let v = ii[idx];
                layer = if v == mm[up].saturating_add(scheme.open_extend()) {
                    0
                } else if v == ii[up].saturating_add(scheme.gap_extend) {
                    1
                } else {
                    2
                };
                i -= 1;
            }
            _ => {
                debug_assert!(j > 0, "D layer at left border");
                cigar.push(Op::Delete);
                let left = i * w + j - 1;
                let v = dd[idx];
                layer = if v == mm[left].saturating_add(scheme.open_extend()) {
                    0
                } else if v == dd[left].saturating_add(scheme.gap_extend) {
                    2
                } else {
                    1
                };
                j -= 1;
            }
        }
        if i == 0 && j > 0 {
            layer = 2;
        }
        if j == 0 && i > 0 {
            layer = 1;
        }
    }
    cigar.reverse();
    Ok(Alignment { score, cigar })
}

/// Score-only affine alignment in `O(n)` memory.
#[must_use]
#[allow(clippy::needless_range_loop)] // index loops mirror the recurrences
pub fn affine_score(query: &[u8], reference: &[u8], scheme: &AffineScheme) -> i32 {
    let n = reference.len();
    let mut mm: Vec<i32> = vec![NEG; n + 1];
    let mut ii: Vec<i32> = vec![NEG; n + 1];
    let mut dd: Vec<i32> = vec![NEG; n + 1];
    mm[0] = 0;
    for j in 1..=n {
        dd[j] = scheme.gap(j as u32);
    }
    for (i, &q) in query.iter().enumerate() {
        let mut diag_m = mm[0];
        let mut diag_i = ii[0];
        let mut diag_d = dd[0];
        mm[0] = NEG;
        ii[0] = scheme.gap(i as u32 + 1);
        dd[0] = NEG;
        for j in 1..=n {
            let (pm, pi, pd) = (mm[j], ii[j], dd[j]);
            let s = scheme.score(q, reference[j - 1]);
            let oe = scheme.open_extend();
            let best_prev = diag_m.max(diag_i).max(diag_d);
            let new_m = if best_prev <= NEG / 2 { NEG } else { best_prev.saturating_add(s) };
            let new_i = (pm.saturating_add(oe))
                .max(pi.saturating_add(scheme.gap_extend))
                .max(pd.saturating_add(oe))
                .max(NEG);
            let new_d = (mm[j - 1].saturating_add(oe))
                .max(dd[j - 1].saturating_add(scheme.gap_extend))
                .max(ii[j - 1].saturating_add(oe))
                .max(NEG);
            diag_m = pm;
            diag_i = pi;
            diag_d = pd;
            mm[j] = new_m;
            ii[j] = new_i;
            dd[j] = new_d;
        }
    }
    mm[n].max(ii[n]).max(dd[n])
}

/// Re-scores a CIGAR under affine penalties (gap segments charged open +
/// per-character extend).
///
/// # Errors
///
/// Returns [`AlignError::Internal`] if the CIGAR does not consume exactly
/// the two sequences or mislabels a match.
pub fn affine_rescore(
    cigar: &Cigar,
    query: &[u8],
    reference: &[u8],
    scheme: &AffineScheme,
) -> Result<i32, AlignError> {
    let mut total = 0i64;
    let (mut qi, mut rj) = (0usize, 0usize);
    for &(op, count) in cigar.runs() {
        match op {
            Op::Match | Op::Mismatch => {
                for _ in 0..count {
                    let (a, b) = (
                        *query
                            .get(qi)
                            .ok_or_else(|| AlignError::Internal("query overrun".into()))?,
                        *reference
                            .get(rj)
                            .ok_or_else(|| AlignError::Internal("reference overrun".into()))?,
                    );
                    if (a == b) != (op == Op::Match) {
                        return Err(AlignError::Internal(format!("mislabel at q[{qi}]")));
                    }
                    total += scheme.score(a, b) as i64;
                    qi += 1;
                    rj += 1;
                }
            }
            Op::Insert => {
                total += scheme.gap(count) as i64;
                qi += count as usize;
            }
            Op::Delete => {
                total += scheme.gap(count) as i64;
                rj += count as usize;
            }
        }
    }
    if qi != query.len() || rj != reference.len() {
        return Err(AlignError::Internal("cigar does not consume sequences".into()));
    }
    Ok(total as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn s() -> AffineScheme {
        AffineScheme::minimap2()
    }

    #[test]
    fn identical_sequences() {
        let q = [0u8, 1, 2, 3, 0, 1];
        let a = affine_align(&q, &q, &s()).unwrap();
        assert_eq!(a.score, 12);
        assert_eq!(a.cigar.to_string(), "6=");
    }

    #[test]
    fn extreme_penalties_saturate_instead_of_overflowing() {
        // gap(k) = open + k·extend overflows i32 for k = 4000 at a -1e9
        // extend penalty; the recurrences must clamp, stay consistent
        // between the full and score-only variants, and terminate.
        let scheme = AffineScheme::new(1, -1, -1_000_000_000, -1_000_000_000).unwrap();
        assert_eq!(scheme.gap(4000), i32::MIN);
        let q = vec![0u8; 3000];
        let r = vec![1u8; 2500];
        let a = affine_align(&q, &r, &scheme).unwrap();
        assert_eq!(a.score, affine_score(&q, &r, &scheme));
        assert_eq!(a.cigar.query_len() as usize, q.len());
        assert_eq!(a.cigar.reference_len() as usize, r.len());
    }

    #[test]
    fn degenerate_inputs_yield_typed_errors_or_defined_results() {
        let scheme = s();
        // Empty inputs are a typed error, never a panic.
        assert!(matches!(affine_align(&[], &[0, 1], &scheme), Err(AlignError::EmptySequence)));
        assert!(matches!(affine_align(&[0, 1], &[], &scheme), Err(AlignError::EmptySequence)));
        assert!(matches!(affine_align(&[], &[], &scheme), Err(AlignError::EmptySequence)));
        // Single symbols are well-defined.
        let a = affine_align(&[1], &[1], &scheme).unwrap();
        assert_eq!(a.cigar.to_string(), "1=");
        assert_eq!(a.score, affine_score(&[1], &[1], &scheme));
        let a = affine_align(&[1], &[2], &scheme).unwrap();
        assert_eq!(a.score, affine_score(&[1], &[2], &scheme));
    }

    #[test]
    fn one_long_gap_beats_two_short() {
        // Affine prefers a single gap segment: q has a 2-base deletion.
        let r = [0u8, 1, 2, 3, 0, 1, 2, 3];
        let q = [0u8, 1, 2, 3, 2, 3];
        let a = affine_align(&q, &r, &s()).unwrap();
        // Expect one 2-long deletion: 6 matches + gap(2) = 12 - 8 = 4.
        assert_eq!(a.score, 12 - (4 + 2 * 2));
        let deletions: Vec<u32> =
            a.cigar.runs().iter().filter(|(op, _)| *op == Op::Delete).map(|&(_, n)| n).collect();
        assert_eq!(deletions, vec![2], "single consolidated gap");
    }

    #[test]
    fn rescore_matches_alignment_score() {
        let q = [0u8, 3, 2, 3, 1, 0, 0, 2];
        let r = [0u8, 1, 2, 3, 1, 2, 0];
        let a = affine_align(&q, &r, &s()).unwrap();
        assert_eq!(affine_rescore(&a.cigar, &q, &r, &s()).unwrap(), a.score);
    }

    #[test]
    fn score_only_matches_full() {
        let q = [0u8, 3, 2, 3, 1, 0, 0, 2, 1, 1];
        let r = [0u8, 1, 2, 3, 1, 2, 0, 3];
        assert_eq!(affine_score(&q, &r, &s()), affine_align(&q, &r, &s()).unwrap().score);
    }

    #[test]
    fn linear_equivalence() {
        // With gap_open = 0, affine(k) = k*extend = linear gap model.
        let aff = AffineScheme { match_score: 2, mismatch: -4, gap_open: 0, gap_extend: -4 };
        let lin = crate::scoring::ScoringScheme::linear(2, -4, -4).unwrap();
        let q = [0u8, 3, 2, 3, 1, 0];
        let r = [0u8, 1, 2, 1, 2, 0, 3];
        assert_eq!(affine_score(&q, &r, &aff), crate::dp::score_only(&q, &r, &lin));
    }

    #[test]
    fn invalid_schemes_rejected() {
        assert!(AffineScheme::new(-1, -1, -1, -1).is_err());
        assert!(AffineScheme::new(1, 1, -1, -1).is_err());
        assert!(AffineScheme::new(1, -1, 1, -1).is_err());
        assert!(AffineScheme::new(1, -1, -1, 0).is_err());
    }

    #[test]
    fn empty_rejected() {
        assert!(affine_align(&[], &[0], &s()).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn traceback_rescores_to_dp_score(
            q in proptest::collection::vec(0u8..4, 1..40),
            r in proptest::collection::vec(0u8..4, 1..40),
        ) {
            let a = affine_align(&q, &r, &s()).unwrap();
            prop_assert_eq!(affine_rescore(&a.cigar, &q, &r, &s()).unwrap(), a.score);
            prop_assert_eq!(affine_score(&q, &r, &s()), a.score);
        }

        #[test]
        fn affine_never_beats_linear_with_same_extend(
            q in proptest::collection::vec(0u8..4, 1..30),
            r in proptest::collection::vec(0u8..4, 1..30),
        ) {
            // Adding a (negative) open penalty can only lower the score.
            let aff = AffineScheme { match_score: 1, mismatch: -1, gap_open: -2, gap_extend: -1 };
            let lin = crate::scoring::ScoringScheme::linear(1, -1, -1).unwrap();
            prop_assert!(affine_score(&q, &r, &aff) <= crate::dp::score_only(&q, &r, &lin));
        }
    }
}
