//! Error types for the alignment foundation crate.

use std::error::Error;
use std::fmt;

/// Errors produced by sequence construction, scoring-scheme validation, and
/// reference alignment routines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AlignError {
    /// A character is not representable in the requested alphabet.
    InvalidSymbol {
        /// The offending character.
        symbol: char,
        /// The alphabet that rejected it.
        alphabet: &'static str,
    },
    /// An encoded code point is out of range for the alphabet.
    InvalidCode {
        /// The offending code.
        code: u8,
        /// The alphabet that rejected it.
        alphabet: &'static str,
    },
    /// A scoring scheme violates a structural requirement (for example a
    /// negative match score or a positive gap penalty).
    InvalidScoring(String),
    /// The scoring scheme does not fit the requested element width: the
    /// shifted score range `[0, theta]` would overflow `EW` bits.
    ElementWidthOverflow {
        /// Required value range upper bound (theta).
        theta: i32,
        /// Bits available per element.
        ew_bits: u8,
    },
    /// Sequences passed to an alignment routine are empty or mismatched with
    /// the routine's requirements.
    EmptySequence,
    /// Two sequences use different alphabets.
    AlphabetMismatch,
    /// An internal invariant was violated (indicates a bug, surfaced as an
    /// error rather than a panic for robustness in harnesses).
    Internal(String),
}

impl fmt::Display for AlignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlignError::InvalidSymbol { symbol, alphabet } => {
                write!(f, "symbol {symbol:?} is not valid for alphabet {alphabet}")
            }
            AlignError::InvalidCode { code, alphabet } => {
                write!(f, "code {code} is out of range for alphabet {alphabet}")
            }
            AlignError::InvalidScoring(msg) => write!(f, "invalid scoring scheme: {msg}"),
            AlignError::ElementWidthOverflow { theta, ew_bits } => write!(
                f,
                "score range [0, {theta}] does not fit in a {ew_bits}-bit element"
            ),
            AlignError::EmptySequence => write!(f, "sequences must be non-empty"),
            AlignError::AlphabetMismatch => write!(f, "sequences use different alphabets"),
            AlignError::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
        }
    }
}

impl Error for AlignError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let errs = [
            AlignError::InvalidSymbol { symbol: 'z', alphabet: "dna" },
            AlignError::InvalidCode { code: 9, alphabet: "dna" },
            AlignError::InvalidScoring("gap must be non-positive".into()),
            AlignError::ElementWidthOverflow { theta: 40, ew_bits: 4 },
            AlignError::EmptySequence,
            AlignError::AlphabetMismatch,
            AlignError::Internal("oops".into()),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AlignError>();
    }
}
