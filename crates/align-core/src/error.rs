//! Error types for the alignment foundation crate.

use std::error::Error;
use std::fmt;

/// Errors produced by sequence construction, scoring-scheme validation, and
/// reference alignment routines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AlignError {
    /// A character is not representable in the requested alphabet.
    InvalidSymbol {
        /// The offending character.
        symbol: char,
        /// The alphabet that rejected it.
        alphabet: &'static str,
    },
    /// An encoded code point is out of range for the alphabet.
    InvalidCode {
        /// The offending code.
        code: u8,
        /// The alphabet that rejected it.
        alphabet: &'static str,
    },
    /// A scoring scheme violates a structural requirement (for example a
    /// negative match score or a positive gap penalty).
    InvalidScoring(String),
    /// The scoring scheme does not fit the requested element width: the
    /// shifted score range `[0, theta]` would overflow `EW` bits.
    ElementWidthOverflow {
        /// Required value range upper bound (theta).
        theta: i32,
        /// Bits available per element.
        ew_bits: u8,
    },
    /// Sequences passed to an alignment routine are empty or mismatched with
    /// the routine's requirements.
    EmptySequence,
    /// Two sequences use different alphabets.
    AlphabetMismatch,
    /// A DP-tile's border data failed its integrity check: the data read
    /// back from the worker SRAM / L2 path does not match the checksum
    /// computed at the engine output port (fault model, DESIGN.md).
    TileCorrupted {
        /// Tile row in the block's tile grid.
        ti: usize,
        /// Tile column in the block's tile grid.
        tj: usize,
    },
    /// An SMX-worker missed its watchdog deadline while computing a tile
    /// (hung worker / stalled engine handshake).
    WorkerTimeout {
        /// Tile row in the block's tile grid.
        ti: usize,
        /// Tile column in the block's tile grid.
        tj: usize,
        /// The deadline that was exceeded, in cycles.
        deadline_cycles: u64,
    },
    /// `smx.pack` produced codes diverging from the reference encoding.
    PackDivergence {
        /// First sequence position whose code diverged.
        position: usize,
    },
    /// Tile-level recovery exhausted its retry and fallback budget; the
    /// enclosing alignment must degrade to the software path.
    RecoveryExhausted {
        /// Tile row of the tile that could not be recovered.
        ti: usize,
        /// Tile column of the tile that could not be recovered.
        tj: usize,
        /// Retries spent on the tile before giving up.
        retries: u32,
    },
    /// The pair's cancellation token was triggered; the alignment was
    /// abandoned cooperatively at a tile boundary.
    Cancelled,
    /// The pair's wall-clock deadline expired before the alignment
    /// completed (checked at tile boundaries via the watchdog hook).
    DeadlineExceeded {
        /// The per-pair budget that was exceeded, in milliseconds.
        budget_ms: u64,
    },
    /// A result audit caught a device returning a plausible-but-wrong
    /// alignment: the CIGAR is malformed, disagrees with the sequences,
    /// or does not re-score to the claimed score. Raised by the service
    /// layer's scoreboard (`Cigar`/`Alignment` re-verification), never
    /// by the device itself — silent readout corruption is by definition
    /// invisible to the device's own border checksums.
    IntegrityViolation {
        /// Pool index of the device whose result failed the audit.
        device: usize,
        /// Human-readable description of the inconsistency.
        detail: String,
    },
    /// An internal invariant was violated (indicates a bug, surfaced as an
    /// error rather than a panic for robustness in harnesses).
    Internal(String),
}

impl AlignError {
    /// Whether the error is a transient device fault that tile-level
    /// retry or the software fallback can recover from (as opposed to an
    /// input or configuration error, which retrying cannot fix).
    #[must_use]
    pub fn is_recoverable_fault(&self) -> bool {
        matches!(
            self,
            AlignError::TileCorrupted { .. }
                | AlignError::WorkerTimeout { .. }
                | AlignError::RecoveryExhausted { .. }
        )
    }
}

impl fmt::Display for AlignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlignError::InvalidSymbol { symbol, alphabet } => {
                write!(f, "symbol {symbol:?} is not valid for alphabet {alphabet}")
            }
            AlignError::InvalidCode { code, alphabet } => {
                write!(f, "code {code} is out of range for alphabet {alphabet}")
            }
            AlignError::InvalidScoring(msg) => write!(f, "invalid scoring scheme: {msg}"),
            AlignError::ElementWidthOverflow { theta, ew_bits } => {
                write!(f, "score range [0, {theta}] does not fit in a {ew_bits}-bit element")
            }
            AlignError::EmptySequence => write!(f, "sequences must be non-empty"),
            AlignError::AlphabetMismatch => write!(f, "sequences use different alphabets"),
            AlignError::TileCorrupted { ti, tj } => {
                write!(f, "tile ({ti}, {tj}) failed its border checksum (corrupted data)")
            }
            AlignError::WorkerTimeout { ti, tj, deadline_cycles } => write!(
                f,
                "worker missed the {deadline_cycles}-cycle watchdog deadline on tile ({ti}, {tj})"
            ),
            AlignError::PackDivergence { position } => {
                write!(f, "smx.pack produced diverging codes at position {position}")
            }
            AlignError::RecoveryExhausted { ti, tj, retries } => {
                write!(f, "recovery exhausted after {retries} retries on tile ({ti}, {tj})")
            }
            AlignError::Cancelled => write!(f, "alignment cancelled"),
            AlignError::DeadlineExceeded { budget_ms } => {
                write!(f, "deadline of {budget_ms} ms exceeded")
            }
            AlignError::IntegrityViolation { device, detail } => {
                write!(f, "integrity audit failed on device {device}: {detail}")
            }
            AlignError::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
        }
    }
}

impl Error for AlignError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let errs = [
            AlignError::InvalidSymbol { symbol: 'z', alphabet: "dna" },
            AlignError::InvalidCode { code: 9, alphabet: "dna" },
            AlignError::InvalidScoring("gap must be non-positive".into()),
            AlignError::ElementWidthOverflow { theta: 40, ew_bits: 4 },
            AlignError::EmptySequence,
            AlignError::AlphabetMismatch,
            AlignError::TileCorrupted { ti: 1, tj: 2 },
            AlignError::WorkerTimeout { ti: 0, tj: 3, deadline_cycles: 64 },
            AlignError::PackDivergence { position: 17 },
            AlignError::RecoveryExhausted { ti: 2, tj: 2, retries: 3 },
            AlignError::Cancelled,
            AlignError::DeadlineExceeded { budget_ms: 250 },
            AlignError::IntegrityViolation { device: 3, detail: "score mismatch".into() },
            AlignError::Internal("oops".into()),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AlignError>();
    }

    #[test]
    fn fault_variants_are_recoverable_input_errors_are_not() {
        assert!(AlignError::TileCorrupted { ti: 0, tj: 0 }.is_recoverable_fault());
        assert!(
            AlignError::WorkerTimeout { ti: 0, tj: 0, deadline_cycles: 1 }.is_recoverable_fault()
        );
        assert!(AlignError::RecoveryExhausted { ti: 0, tj: 0, retries: 0 }.is_recoverable_fault());
        assert!(!AlignError::EmptySequence.is_recoverable_fault());
        assert!(!AlignError::AlphabetMismatch.is_recoverable_fault());
        // Cancellation and deadline expiry must never trigger the software
        // fallback: retrying or degrading would defeat their purpose.
        assert!(!AlignError::Cancelled.is_recoverable_fault());
        assert!(!AlignError::DeadlineExceeded { budget_ms: 1 }.is_recoverable_fault());
        // Integrity violations are handled by the scoreboard's own
        // retry-then-recompute ladder, not by tile-level recovery.
        assert!(!AlignError::IntegrityViolation { device: 0, detail: String::new() }
            .is_recoverable_fault());
        assert!(!AlignError::PackDivergence { position: 0 }.is_recoverable_fault());
        assert!(!AlignError::Internal("x".into()).is_recoverable_fault());
    }
}
