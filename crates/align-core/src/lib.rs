//! # smx-align-core
//!
//! Foundation crate for the SMX reproduction: alphabets, sequences, scoring
//! schemes (edit / linear-gap / substitution-matrix), golden-model dynamic
//! programming (full Needleman–Wunsch with traceback and a linear-memory
//! score-only variant), and alignment (CIGAR) representation.
//!
//! Every accelerated engine in the workspace — the SMX-1D ISA model, the
//! SMX-2D coprocessor model, and the software baselines — is validated
//! against the reference implementations in this crate.
//!
//! ## Example
//!
//! ```
//! use smx_align_core::{Alphabet, Sequence, ScoringScheme, dp};
//!
//! # fn main() -> Result<(), smx_align_core::AlignError> {
//! let q = Sequence::from_text(Alphabet::Dna4, "GATTACA")?;
//! let r = Sequence::from_text(Alphabet::Dna4, "GACTATA")?;
//! let scheme = ScoringScheme::edit();
//! let aln = dp::align(&q, &r, &scheme)?;
//! assert_eq!(aln.score, -2); // edit distance 2, expressed as maximal score
//! # Ok(())
//! # }
//! ```

pub mod alphabet;
pub mod cigar;
pub mod config;
pub mod dp;
pub mod dp_affine;
pub mod dp_local;
pub mod dp_semiglobal;
pub mod error;
pub mod pretty;
pub mod scoring;
pub mod sequence;
pub mod submat;

pub use alphabet::Alphabet;
pub use cigar::{Alignment, Cigar, Op};
pub use config::{AlignmentConfig, ElementWidth};
pub use error::AlignError;
pub use scoring::ScoringScheme;
pub use sequence::Sequence;
pub use submat::SubstMatrix;
