//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of the criterion API its benches use. Measurement
//! is a simple best-of-N wall-clock loop with per-iteration reporting —
//! adequate for relative comparisons in this environment; it makes no
//! attempt at criterion's statistical rigor.

use std::time::{Duration, Instant};

/// How batched setup cost relates to the routine (accepted, unused).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per allocation.
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-benchmark timing driver.
pub struct Bencher {
    iters: u64,
    best: Duration,
}

impl Bencher {
    fn new() -> Bencher {
        Bencher { iters: 0, best: Duration::MAX }
    }

    /// Times `routine`, keeping the best mean over a few rounds.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        const ROUNDS: u32 = 3;
        const ITERS: u32 = 5;
        for _ in 0..ROUNDS {
            let start = Instant::now();
            for _ in 0..ITERS {
                std::hint::black_box(routine());
            }
            let mean = start.elapsed() / ITERS;
            self.best = self.best.min(mean);
            self.iters += u64::from(ITERS);
        }
    }

    /// Times `routine` on fresh inputs from `setup` (setup not timed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        const ROUNDS: u32 = 3;
        for _ in 0..ROUNDS {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            let once = start.elapsed();
            self.best = self.best.min(once);
            self.iters += 1;
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one benchmark and prints its best time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher::new();
        f(&mut b);
        let per_iter = b.best.as_nanos().max(1);
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:.3} Melem/s", n as f64 * 1e3 / per_iter as f64)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:.3} MB/s", n as f64 * 1e3 / per_iter as f64)
            }
            None => String::new(),
        };
        println!("{}/{id}: {per_iter} ns/iter{rate}", self.name);
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Benchmark registry and entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), throughput: None, _criterion: self }
    }
}

/// Declares a group-running function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $f(&mut c); )+
        }
    };
}

/// Declares `main` from group-running functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(100));
        g.bench_function("add", |b| b.iter(|| std::hint::black_box(2u64) + 2));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
    }
}
