//! ASCII text generation with a typo channel (the text/information-
//! retrieval use case of the ASCII-edit configuration).

use crate::mutate::{mutate, ErrorProfile};
use rand::rngs::StdRng;
use rand::Rng;
use smx_align_core::{Alphabet, Sequence};

const WORDS: &[&str] = &[
    "sequence",
    "alignment",
    "matrix",
    "vector",
    "kernel",
    "memory",
    "cache",
    "worker",
    "engine",
    "tile",
    "block",
    "score",
    "trace",
    "query",
    "reference",
    "protein",
    "genome",
    "hardware",
    "systolic",
    "pipeline",
    "register",
    "parallel",
    "compute",
    "border",
];

/// Generates pseudo-English text of roughly `len` characters.
#[must_use]
pub fn random_text(len: usize, rng: &mut StdRng) -> Sequence {
    let mut out = String::with_capacity(len + 16);
    while out.len() < len {
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(WORDS[rng.gen_range(0..WORDS.len())]);
    }
    out.truncate(len);
    Sequence::from_text(Alphabet::Ascii, &out).expect("generated text is ASCII")
}

/// A (reference, query) text pair with a typo channel of the given rate.
#[must_use]
pub fn text_pair(len: usize, typo_rate: f64, rng: &mut StdRng) -> (Sequence, Sequence) {
    let reference = random_text(len, rng);
    let profile = ErrorProfile {
        sub_rate: typo_rate * 0.6,
        ins_rate: typo_rate * 0.2,
        del_rate: typo_rate * 0.2,
    };
    let query = mutate(&reference, &profile, rng);
    (reference, query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn text_has_requested_length() {
        let mut rng = StdRng::seed_from_u64(31);
        let t = random_text(500, &mut rng);
        assert_eq!(t.len(), 500);
    }

    #[test]
    fn typos_create_small_edit_distance() {
        let mut rng = StdRng::seed_from_u64(32);
        let (r, q) = text_pair(2000, 0.02, &mut rng);
        let d = smx_align_core::dp::edit_distance(q.codes(), r.codes());
        assert!(d > 0 && d < 150, "distance {d}");
    }
}
