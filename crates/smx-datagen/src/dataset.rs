//! Named datasets: seeded collections of (reference, query) pairs matching
//! the paper's evaluation inputs (§7).

use crate::{ascii, dna, mutate::ErrorProfile, protein};
use rand::rngs::StdRng;
use rand::SeedableRng;
use smx_align_core::{AlignmentConfig, Sequence};

/// One alignment task: a reference and a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqPair {
    /// The reference sequence.
    pub reference: Sequence,
    /// The query sequence.
    pub query: Sequence,
}

impl SeqPair {
    /// DP-matrix cell count for this pair.
    #[must_use]
    pub fn cells(&self) -> u64 {
        self.reference.len() as u64 * self.query.len() as u64
    }
}

/// A named, seeded dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dataset {
    /// Dataset name (shown in harness output).
    pub name: String,
    /// The configuration the dataset targets.
    pub config: AlignmentConfig,
    /// The alignment tasks.
    pub pairs: Vec<SeqPair>,
}

impl Dataset {
    /// Synthetic fixed-length pairs for the Fig. 9 sweeps.
    #[must_use]
    pub fn synthetic(
        config: AlignmentConfig,
        len: usize,
        count: usize,
        profile: ErrorProfile,
        seed: u64,
    ) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let pairs = (0..count)
            .map(|_| {
                let (reference, query) = match config {
                    AlignmentConfig::DnaEdit | AlignmentConfig::DnaGap => {
                        dna::synthetic_pair(config.alphabet(), len, &profile, &mut rng)
                    }
                    AlignmentConfig::Protein => {
                        let r = protein::random_protein(len, &mut rng);
                        let q = crate::mutate::mutate(&r, &profile, &mut rng);
                        (r, q)
                    }
                    AlignmentConfig::Ascii => {
                        let r = ascii::random_text(len, &mut rng);
                        let q = crate::mutate::mutate(&r, &profile, &mut rng);
                        (r, q)
                    }
                };
                SeqPair { reference, query }
            })
            .collect();
        Dataset { name: format!("{}-{len}bp", config.name()), config, pairs }
    }

    /// PacBio-HiFi stand-in (~15 kbp, ~0.5% error), DNA-gap configuration.
    #[must_use]
    pub fn pacbio_like(count: usize, seed: u64) -> Dataset {
        let config = AlignmentConfig::DnaGap;
        let mut rng = StdRng::seed_from_u64(seed);
        let pairs = (0..count)
            .map(|_| {
                let (reference, query) = dna::pacbio_pair(config.alphabet(), &mut rng);
                SeqPair { reference, query }
            })
            .collect();
        Dataset { name: "pacbio-hifi".into(), config, pairs }
    }

    /// ONT stand-in (~50 kbp, ~7% indel-heavy error), DNA-edit
    /// configuration by default (Edlib-style filtering uses edit distance).
    #[must_use]
    pub fn ont_like(config: AlignmentConfig, count: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let pairs = (0..count)
            .map(|_| {
                let (reference, query) = dna::ont_pair(config.alphabet(), &mut rng);
                SeqPair { reference, query }
            })
            .collect();
        Dataset { name: "ont".into(), config, pairs }
    }

    /// ONT stand-in with structural variants: every pair carries a
    /// deletion of `sv_len` bases besides the per-base error channel
    /// (what makes window-limited heuristics fail, Fig. 14).
    #[must_use]
    pub fn ont_sv_like(
        config: AlignmentConfig,
        len: usize,
        sv_len: usize,
        count: usize,
        seed: u64,
    ) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let pairs = (0..count)
            .map(|_| {
                let (reference, query) = dna::structural_variant_pair(
                    config.alphabet(),
                    len,
                    sv_len,
                    &crate::mutate::ErrorProfile::ont(),
                    &mut rng,
                );
                SeqPair { reference, query }
            })
            .collect();
        Dataset { name: "ont-sv".into(), config, pairs }
    }

    /// Repeat-rich DNA pairs: references with tandem repeats and
    /// homopolymer runs (the low-complexity structure that stresses
    /// banded heuristics), mutated with the given profile.
    #[must_use]
    pub fn repeat_rich(
        config: AlignmentConfig,
        len: usize,
        repeat_fraction: f64,
        count: usize,
        seed: u64,
    ) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let pairs = (0..count)
            .map(|_| {
                let reference =
                    dna::repeat_rich_dna(config.alphabet(), len, repeat_fraction, &mut rng);
                let query = crate::mutate::mutate(
                    &reference,
                    &crate::mutate::ErrorProfile::moderate(),
                    &mut rng,
                );
                SeqPair { reference, query }
            })
            .collect();
        Dataset { name: "repeat-rich".into(), config, pairs }
    }

    /// UniProt-style protein query set (~350 aa homolog pairs).
    #[must_use]
    pub fn uniprot_like(count: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let pairs = (0..count)
            .map(|_| {
                let (reference, query) =
                    protein::homolog_pair(protein::PROTEIN_MEAN_LEN, 0.25, &mut rng);
                SeqPair { reference, query }
            })
            .collect();
        Dataset { name: "uniprot".into(), config: AlignmentConfig::Protein, pairs }
    }

    /// ASCII text pairs with a 2% typo channel.
    #[must_use]
    pub fn ascii_like(len: usize, count: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let pairs = (0..count)
            .map(|_| {
                let (reference, query) = ascii::text_pair(len, 0.02, &mut rng);
                SeqPair { reference, query }
            })
            .collect();
        Dataset { name: "ascii-text".into(), config: AlignmentConfig::Ascii, pairs }
    }

    /// Total DP cells across all pairs.
    #[must_use]
    pub fn total_cells(&self) -> u64 {
        self.pairs.iter().map(SeqPair::cells).sum()
    }

    /// Mean sequence length across pairs (reference side).
    #[must_use]
    pub fn mean_reference_len(&self) -> f64 {
        if self.pairs.is_empty() {
            return 0.0;
        }
        self.pairs.iter().map(|p| p.reference.len()).sum::<usize>() as f64 / self.pairs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_is_deterministic() {
        let a = Dataset::synthetic(AlignmentConfig::DnaEdit, 200, 3, ErrorProfile::moderate(), 5);
        let b = Dataset::synthetic(AlignmentConfig::DnaEdit, 200, 3, ErrorProfile::moderate(), 5);
        assert_eq!(a, b);
        let c = Dataset::synthetic(AlignmentConfig::DnaEdit, 200, 3, ErrorProfile::moderate(), 6);
        assert_ne!(a, c);
    }

    #[test]
    fn all_configs_generate() {
        for cfg in AlignmentConfig::ALL {
            let ds = Dataset::synthetic(cfg, 64, 2, ErrorProfile::moderate(), 1);
            assert_eq!(ds.pairs.len(), 2);
            assert_eq!(ds.config, cfg);
            for p in &ds.pairs {
                assert_eq!(p.reference.alphabet(), cfg.alphabet());
                assert!(!p.query.is_empty());
            }
        }
    }

    #[test]
    fn real_dataset_standins_have_expected_scale() {
        let pb = Dataset::pacbio_like(2, 3);
        assert!(pb.mean_reference_len() > 10_000.0);
        let ont = Dataset::ont_like(AlignmentConfig::DnaEdit, 2, 3);
        assert!(ont.mean_reference_len() > 35_000.0);
        let up = Dataset::uniprot_like(4, 3);
        assert!(up.mean_reference_len() > 200.0 && up.mean_reference_len() < 600.0);
    }

    #[test]
    fn repeat_rich_generates() {
        let ds = Dataset::repeat_rich(AlignmentConfig::DnaEdit, 2000, 0.5, 3, 5);
        assert_eq!(ds.pairs.len(), 3);
        for p in &ds.pairs {
            assert_eq!(p.reference.len(), 2000);
            assert!(!p.query.is_empty());
        }
    }

    #[test]
    fn cells_accounting() {
        let ds = Dataset::ascii_like(100, 2, 4);
        assert_eq!(ds.total_cells(), ds.pairs.iter().map(|p| p.cells()).sum::<u64>());
    }
}
