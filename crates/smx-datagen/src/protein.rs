//! Protein sequence generation with realistic amino-acid frequencies and
//! homolog-pair derivation (the UniProt query-set stand-in).

use crate::mutate::{mutate, ErrorProfile};
use rand::rngs::StdRng;
use rand::Rng;
use smx_align_core::{Alphabet, Sequence};

/// Approximate UniProt amino-acid frequencies (per mille), indexed by
/// alphabet code `0 = 'A' .. 25 = 'Z'`. Codes that are not canonical amino
/// acids (B, J, O, U, X, Z) get a tiny residual weight.
const AA_WEIGHTS: [u32; 26] = [
    83, 1, 14, 55, 67, 39, 71, 22, 59, 1, 58, 97, 24, 41, 1, 47, 39, 55, 66, 54, 1, 69, 11, 1, 29,
    1,
];

/// Mean length of generated proteins (UniProt average ≈ 350 aa).
pub const PROTEIN_MEAN_LEN: usize = 350;

/// Draws one amino acid from the frequency table.
fn draw_aa(rng: &mut StdRng) -> u8 {
    let total: u32 = AA_WEIGHTS.iter().sum();
    let mut x = rng.gen_range(0..total);
    for (code, &w) in AA_WEIGHTS.iter().enumerate() {
        if x < w {
            return code as u8;
        }
        x -= w;
    }
    0
}

/// A random protein of `len` residues with realistic composition.
#[must_use]
pub fn random_protein(len: usize, rng: &mut StdRng) -> Sequence {
    let codes: Vec<u8> = (0..len).map(|_| draw_aa(rng)).collect();
    Sequence::from_codes(Alphabet::Protein, codes).expect("codes < 26 are valid")
}

/// A homolog pair at roughly `divergence` substitutions per residue plus
/// light indels — the shape of a UniProt query hit.
#[must_use]
pub fn homolog_pair(mean_len: usize, divergence: f64, rng: &mut StdRng) -> (Sequence, Sequence) {
    let jitter = (mean_len / 4).max(1);
    let len = mean_len - jitter + rng.gen_range(0..2 * jitter);
    let reference = random_protein(len, rng);
    let profile = ErrorProfile {
        sub_rate: divergence,
        ins_rate: divergence * 0.08,
        del_rate: divergence * 0.08,
    };
    let query = mutate(&reference, &profile, rng);
    (reference, query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn composition_tracks_weights() {
        let mut rng = StdRng::seed_from_u64(21);
        let s = random_protein(100_000, &mut rng);
        let mut counts = [0usize; 26];
        for c in s.iter() {
            counts[c as usize] += 1;
        }
        // Leucine (code 11, 'L') is the most common canonical residue.
        let leu = counts[11] as f64 / s.len() as f64;
        assert!((0.07..0.13).contains(&leu), "L frequency {leu}");
        // Rare codes stay rare.
        assert!(counts[14] < 1000, "O count {}", counts[14]);
    }

    #[test]
    fn homolog_pairs_diverge_but_align() {
        let mut rng = StdRng::seed_from_u64(22);
        let (r, q) = homolog_pair(300, 0.2, &mut rng);
        assert!(r.len() > 200);
        assert!(q.len() > 150);
        let dist = smx_align_core::dp::edit_distance(q.codes(), r.codes()) as f64 / r.len() as f64;
        assert!((0.1..0.4).contains(&dist), "divergence {dist}");
    }
}
