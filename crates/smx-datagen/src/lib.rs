//! # smx-datagen
//!
//! Synthetic dataset generation standing in for the paper's experimental
//! datasets (§7): length-parameterized random sequences for the four
//! alignment configurations, plus profile-matched stand-ins for the real
//! datasets — PacBio-HiFi (~15 kbp, low substitution-dominated error),
//! ONT (~50 kbp, high indel-heavy error), and a UniProt-style protein
//! query set. All generation is deterministic given a seed.
//!
//! ## Example
//!
//! ```
//! use smx_datagen::{Dataset, ErrorProfile};
//! use smx_align_core::AlignmentConfig;
//!
//! let ds = Dataset::synthetic(AlignmentConfig::DnaEdit, 1000, 4, ErrorProfile::moderate(), 7);
//! assert_eq!(ds.pairs.len(), 4);
//! assert!(ds.pairs.iter().all(|p| p.reference.len() == 1000));
//! ```

pub mod ascii;
pub mod dataset;
pub mod dna;
pub mod mutate;
pub mod protein;

pub use dataset::{Dataset, SeqPair};
pub use mutate::ErrorProfile;
