//! DNA sequence generation with long-read sequencing profiles.

use crate::mutate::{mutate, random_sequence, ErrorProfile};
use rand::rngs::StdRng;
use rand::Rng;
use smx_align_core::{Alphabet, Sequence};

/// Mean read length of the PacBio-HiFi stand-in (paper: ≈15 kbp).
pub const PACBIO_MEAN_LEN: usize = 15_000;
/// Mean read length of the ONT stand-in (paper: ≈50 kbp).
pub const ONT_MEAN_LEN: usize = 50_000;

/// A random DNA reference of `len` bases.
#[must_use]
pub fn random_dna(alphabet: Alphabet, len: usize, rng: &mut StdRng) -> Sequence {
    debug_assert!(matches!(alphabet, Alphabet::Dna2 | Alphabet::Dna4));
    // Draw only the four canonical bases even for the 4-bit alphabet, as
    // real references are overwhelmingly ACGT.
    let codes: Vec<u8> = (0..len).map(|_| rng.gen_range(0..4u8)).collect();
    Sequence::from_codes(alphabet, codes).expect("codes 0..4 valid for DNA alphabets")
}

/// A (reference, query) read pair with the given profile; the read length
/// is jittered ±20% around `mean_len`.
#[must_use]
pub fn read_pair(
    alphabet: Alphabet,
    mean_len: usize,
    profile: &ErrorProfile,
    rng: &mut StdRng,
) -> (Sequence, Sequence) {
    let jitter = (mean_len / 5).max(1);
    let len = mean_len - jitter + rng.gen_range(0..2 * jitter);
    let reference = random_dna(alphabet, len, rng);
    let query = mutate(&reference, profile, rng);
    (reference, query)
}

/// A PacBio-HiFi-like pair (2-bit or 4-bit alphabet).
#[must_use]
pub fn pacbio_pair(alphabet: Alphabet, rng: &mut StdRng) -> (Sequence, Sequence) {
    read_pair(alphabet, PACBIO_MEAN_LEN, &ErrorProfile::pacbio_hifi(), rng)
}

/// An ONT-like pair.
#[must_use]
pub fn ont_pair(alphabet: Alphabet, rng: &mut StdRng) -> (Sequence, Sequence) {
    read_pair(alphabet, ONT_MEAN_LEN, &ErrorProfile::ont(), rng)
}

/// Uniform random DNA (for the synthetic length sweeps).
#[must_use]
pub fn synthetic_pair(
    alphabet: Alphabet,
    len: usize,
    profile: &ErrorProfile,
    rng: &mut StdRng,
) -> (Sequence, Sequence) {
    let reference = random_dna(alphabet, len, rng);
    let query = mutate(&reference, profile, rng);
    (reference, query)
}

/// Re-exported helper for non-DNA alphabets.
#[must_use]
pub fn uniform(alphabet: Alphabet, len: usize, rng: &mut StdRng) -> Sequence {
    random_sequence(alphabet, len, rng)
}

/// A DNA reference containing realistic low-complexity structure: tandem
/// repeats and homopolymer runs interspersed with random sequence. Long
/// reads over such regions are what stress banded heuristics (the band
/// must widen where the aligner can slide along a repeat).
#[must_use]
pub fn repeat_rich_dna(
    alphabet: Alphabet,
    len: usize,
    repeat_fraction: f64,
    rng: &mut StdRng,
) -> Sequence {
    debug_assert!(matches!(alphabet, Alphabet::Dna2 | Alphabet::Dna4));
    let mut codes: Vec<u8> = Vec::with_capacity(len + 32);
    while codes.len() < len {
        if rng.gen_bool(repeat_fraction.clamp(0.0, 1.0)) {
            if rng.gen_bool(0.5) {
                // Tandem repeat: unit of 2-6 bases, 4-20 copies.
                let unit_len = rng.gen_range(2..=6);
                let copies = rng.gen_range(4..=20);
                let unit: Vec<u8> = (0..unit_len).map(|_| rng.gen_range(0..4u8)).collect();
                for _ in 0..copies {
                    codes.extend_from_slice(&unit);
                }
            } else {
                // Homopolymer run of 5-25 bases.
                let base = rng.gen_range(0..4u8);
                let run = rng.gen_range(5..=25);
                codes.extend(std::iter::repeat_n(base, run));
            }
        } else {
            // A random stretch.
            let stretch = rng.gen_range(20..=80);
            codes.extend((0..stretch).map(|_| rng.gen_range(0..4u8)));
        }
    }
    codes.truncate(len);
    Sequence::from_codes(alphabet, codes).expect("codes 0..4 valid for DNA alphabets")
}

/// A read pair containing a structural deletion of `sv_len` bases at a
/// random position, on top of the per-base error channel. Long ONT reads
/// routinely span such variants; they are what defeats window-limited
/// heuristics (paper Fig. 14's zero-recall GACT column).
#[must_use]
pub fn structural_variant_pair(
    alphabet: Alphabet,
    len: usize,
    sv_len: usize,
    profile: &ErrorProfile,
    rng: &mut StdRng,
) -> (Sequence, Sequence) {
    let reference = random_dna(alphabet, len, rng);
    let sv_len = sv_len.min(len / 2);
    let pos = rng.gen_range(len / 4..len / 2);
    let mut codes = reference.codes()[..pos].to_vec();
    codes.extend_from_slice(&reference.codes()[pos + sv_len..]);
    let deleted = Sequence::from_codes(alphabet, codes).expect("codes stay valid");
    let query = mutate(&deleted, profile, rng);
    (reference, query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn pacbio_pairs_are_long_and_similar() {
        let mut rng = StdRng::seed_from_u64(11);
        let (r, q) = pacbio_pair(Alphabet::Dna2, &mut rng);
        assert!(r.len() > 10_000 && r.len() < 20_000);
        let dl = (r.len() as i64 - q.len() as i64).unsigned_abs() as usize;
        assert!(dl < r.len() / 50, "length delta {dl}");
    }

    #[test]
    fn ont_pairs_are_longer_and_noisier() {
        let mut rng = StdRng::seed_from_u64(12);
        let (r, _q) = ont_pair(Alphabet::Dna4, &mut rng);
        assert!(r.len() > 35_000);
    }

    #[test]
    fn repeat_rich_has_low_complexity_regions() {
        let mut rng = StdRng::seed_from_u64(17);
        let s = repeat_rich_dna(Alphabet::Dna2, 5000, 0.5, &mut rng);
        assert_eq!(s.len(), 5000);
        // Count positions equal to the previous base: repeat-rich DNA has
        // far more than the 25% expected of uniform random sequence.
        let same: usize = s.codes().windows(2).filter(|w| w[0] == w[1]).count();
        let frac = same as f64 / 4999.0;
        assert!(frac > 0.30, "self-similarity {frac}");
        // And a zero repeat fraction stays near uniform.
        let u = repeat_rich_dna(Alphabet::Dna2, 5000, 0.0, &mut rng);
        let same_u: usize = u.codes().windows(2).filter(|w| w[0] == w[1]).count();
        assert!((same_u as f64 / 4999.0) < 0.30);
    }

    #[test]
    fn dna4_references_stay_acgt() {
        let mut rng = StdRng::seed_from_u64(13);
        let s = random_dna(Alphabet::Dna4, 1000, &mut rng);
        assert!(s.iter().all(|c| c < 4));
    }
}
