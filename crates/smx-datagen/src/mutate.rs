//! The mutation channel: substitutions, insertions, and deletions applied
//! at configurable rates to derive a query from a reference.

use rand::rngs::StdRng;
use rand::Rng;
use smx_align_core::{Alphabet, Sequence};

/// Per-base error rates of a sequencing (or typo) channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorProfile {
    /// Probability a base is substituted.
    pub sub_rate: f64,
    /// Probability an insertion occurs after a base.
    pub ins_rate: f64,
    /// Probability a base is deleted.
    pub del_rate: f64,
}

impl ErrorProfile {
    /// No errors (identical pairs).
    #[must_use]
    pub fn perfect() -> ErrorProfile {
        ErrorProfile { sub_rate: 0.0, ins_rate: 0.0, del_rate: 0.0 }
    }

    /// A moderate ~3% error channel (1% each).
    #[must_use]
    pub fn moderate() -> ErrorProfile {
        ErrorProfile { sub_rate: 0.01, ins_rate: 0.01, del_rate: 0.01 }
    }

    /// PacBio-HiFi-like: ~0.5% total, substitution-dominated.
    #[must_use]
    pub fn pacbio_hifi() -> ErrorProfile {
        ErrorProfile { sub_rate: 0.003, ins_rate: 0.001, del_rate: 0.001 }
    }

    /// ONT-like: ~7% total, indel-heavy.
    #[must_use]
    pub fn ont() -> ErrorProfile {
        ErrorProfile { sub_rate: 0.025, ins_rate: 0.02, del_rate: 0.025 }
    }

    /// Total error rate.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.sub_rate + self.ins_rate + self.del_rate
    }
}

/// Applies the error channel to `reference`, producing a mutated query.
///
/// Substituted and inserted symbols are drawn uniformly from the
/// alphabet's valid codes (excluding the original symbol for
/// substitutions).
///
/// # Panics
///
/// Panics if the alphabet has fewer than two symbols (all supported
/// alphabets have ≥ 4).
#[must_use]
pub fn mutate(reference: &Sequence, profile: &ErrorProfile, rng: &mut StdRng) -> Sequence {
    let alphabet = reference.alphabet();
    let card = alphabet.cardinality() as u32;
    assert!(card >= 2, "alphabet too small to mutate");
    let mut codes = Vec::with_capacity(reference.len() + 8);
    for c in reference.iter() {
        if rng.gen_bool(profile.del_rate.min(1.0)) {
            continue;
        }
        if rng.gen_bool(profile.sub_rate.min(1.0)) {
            // Draw from the other card-1 symbols, skipping the original.
            let mut s = rng.gen_range(0..card - 1) as u8;
            if s >= c {
                s = s.wrapping_add(1);
            }
            codes.push(s);
        } else {
            codes.push(c);
        }
        if rng.gen_bool(profile.ins_rate.min(1.0)) {
            codes.push(rng.gen_range(0..card) as u8);
        }
    }
    if codes.is_empty() {
        codes.push(0);
    }
    Sequence::from_codes(alphabet, codes).expect("mutated codes are valid by construction")
}

/// Draws a uniformly random sequence of `len` symbols.
#[must_use]
pub fn random_sequence(alphabet: Alphabet, len: usize, rng: &mut StdRng) -> Sequence {
    let card = alphabet.cardinality() as u32;
    let codes: Vec<u8> = (0..len).map(|_| rng.gen_range(0..card) as u8).collect();
    Sequence::from_codes(alphabet, codes).expect("random codes are valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use smx_align_core::dp;

    #[test]
    fn perfect_profile_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let r = random_sequence(Alphabet::Dna2, 500, &mut rng);
        let q = mutate(&r, &ErrorProfile::perfect(), &mut rng);
        assert_eq!(q, r);
    }

    #[test]
    fn mutation_rate_tracks_profile() {
        let mut rng = StdRng::seed_from_u64(2);
        let r = random_sequence(Alphabet::Dna2, 4_000, &mut rng);
        let profile = ErrorProfile { sub_rate: 0.05, ins_rate: 0.0, del_rate: 0.0 };
        let q = mutate(&r, &profile, &mut rng);
        assert_eq!(q.len(), r.len());
        let dist = dp::edit_distance(q.codes(), r.codes()) as f64 / r.len() as f64;
        assert!((dist - 0.05).abs() < 0.015, "distance {dist}");
    }

    #[test]
    fn indels_change_length() {
        let mut rng = StdRng::seed_from_u64(3);
        let r = random_sequence(Alphabet::Dna4, 10_000, &mut rng);
        let ins_only = ErrorProfile { sub_rate: 0.0, ins_rate: 0.05, del_rate: 0.0 };
        let q = mutate(&r, &ins_only, &mut rng);
        assert!(q.len() > r.len());
        let del_only = ErrorProfile { sub_rate: 0.0, ins_rate: 0.0, del_rate: 0.05 };
        let q2 = mutate(&r, &del_only, &mut rng);
        assert!(q2.len() < r.len());
    }

    #[test]
    fn deterministic_given_seed() {
        let mut rng1 = StdRng::seed_from_u64(9);
        let mut rng2 = StdRng::seed_from_u64(9);
        let r1 = random_sequence(Alphabet::Protein, 100, &mut rng1);
        let r2 = random_sequence(Alphabet::Protein, 100, &mut rng2);
        assert_eq!(r1, r2);
    }

    #[test]
    fn substitution_never_produces_same_symbol() {
        let mut rng = StdRng::seed_from_u64(4);
        let r = random_sequence(Alphabet::Dna2, 5000, &mut rng);
        let all_subs = ErrorProfile { sub_rate: 1.0, ins_rate: 0.0, del_rate: 0.0 };
        let q = mutate(&r, &all_subs, &mut rng);
        for (a, b) in q.iter().zip(r.iter()) {
            assert_ne!(a, b);
        }
    }
}
