//! Cross-crate functional equivalence: the golden DP, the differential
//! encoding, the SMX-1D ISA kernels, the SMX-2D coprocessor, and the
//! heterogeneous orchestrator must all agree on scores and produce
//! verifiable alignments for every configuration.

use smx::align::{dp, AlignmentConfig, Sequence};
use smx::coproc::block::BlockMode;
use smx::coproc::SmxCoprocessor;
use smx::isa::{kernels, Smx1dUnit};
use smx::prelude::*;

fn test_sequences(config: AlignmentConfig, len: usize, seed: u64) -> (Vec<u8>, Vec<u8>) {
    let card = config.alphabet().cardinality() as u64;
    let gen = |mut x: u64| -> Vec<u8> {
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % card) as u8
            })
            .collect()
    };
    (gen(seed | 1), gen((seed * 31 + 7) | 1))
}

#[test]
fn all_engines_agree_on_scores() {
    for config in AlignmentConfig::ALL {
        let scheme = config.scoring();
        let (q, r) = test_sequences(config, 120, 42);
        let golden = dp::score_only(&q, &r, &scheme);

        // SMX-1D kernel.
        let mut unit = Smx1dUnit::configure(config.element_width(), &scheme).unwrap();
        let isa = kernels::score_block(&mut unit, &q, &r, None).unwrap();
        assert_eq!(isa.score, golden, "{config}: smx-1d");

        // SMX-2D coprocessor.
        let coproc = SmxCoprocessor::new(config.element_width(), &scheme, 4).unwrap();
        let blk = coproc.compute_block(&q, &r, None, BlockMode::ScoreOnly).unwrap();
        assert_eq!(blk.score, golden, "{config}: smx-2d");
    }
}

#[test]
fn all_engines_agree_on_alignments() {
    for config in AlignmentConfig::ALL {
        let scheme = config.scoring();
        let (q, r) = test_sequences(config, 95, 17);
        let golden = dp::align_codes(&q, &r, &scheme);

        // SMX-1D full alignment.
        let mut unit = Smx1dUnit::configure(config.element_width(), &scheme).unwrap();
        let (aln_1d, _) = kernels::align_block(&mut unit, &q, &r, &scheme).unwrap();
        assert_eq!(aln_1d.score, golden.score, "{config}: smx-1d score");
        aln_1d.verify(&q, &r, &scheme).unwrap();

        // SMX-2D + traceback.
        let coproc = SmxCoprocessor::new(config.element_width(), &scheme, 4).unwrap();
        let blk = coproc.compute_block(&q, &r, None, BlockMode::Traceback).unwrap();
        let (cigar, _) = coproc.traceback(&q, &r, &blk).unwrap();
        assert_eq!(cigar.score(&q, &r, &scheme).unwrap(), golden.score, "{config}: smx-2d");
    }
}

#[test]
fn orchestrator_matches_golden_for_every_config() {
    for config in AlignmentConfig::ALL {
        let (qc, rc) = test_sequences(config, 80, 5);
        let q = Sequence::from_codes(config.alphabet(), qc).unwrap();
        let r = Sequence::from_codes(config.alphabet(), rc).unwrap();
        let mut dev = SmxDevice::new(config, 4).unwrap();
        let aln = dev.align(&q, &r).unwrap();
        let golden = dp::score_only(q.codes(), r.codes(), &config.scoring());
        assert_eq!(aln.score, golden, "{config}");
        assert_eq!(dev.score(&q, &r).unwrap(), golden, "{config}: score path");
    }
}

#[test]
fn aligner_and_device_agree() {
    let config = AlignmentConfig::DnaGap;
    let (qc, rc) = test_sequences(config, 150, 77);
    let q = Sequence::from_codes(config.alphabet(), qc).unwrap();
    let r = Sequence::from_codes(config.alphabet(), rc).unwrap();
    let mut dev = SmxDevice::new(config, 4).unwrap();
    let dev_score = dev.score(&q, &r).unwrap();
    let rep = SmxAligner::new(config).run_pair(&q, &r).unwrap();
    assert_eq!(rep.outcome.score, Some(dev_score));
}

#[test]
fn split_blocks_compose_across_the_stack() {
    // One big block on the coprocessor equals two half blocks chained via
    // borders computed by the ISA kernel — the cross-component dataflow
    // the heterogeneous design depends on.
    let config = AlignmentConfig::DnaEdit;
    let scheme = config.scoring();
    let (q, r) = test_sequences(config, 100, 3);
    let coproc = SmxCoprocessor::new(config.element_width(), &scheme, 1).unwrap();
    let whole = coproc.compute_block(&q, &r, None, BlockMode::ScoreOnly).unwrap();

    let mut unit = Smx1dUnit::configure(config.element_width(), &scheme).unwrap();
    let top = kernels::score_block(&mut unit, &q[..50], &r, None).unwrap();
    let borders = smx::diffenc::BlockBorders::from_neighbors(top.bottom_dh, vec![0; 50]);
    let bottom = coproc.compute_block(&q[50..], &r, Some(&borders), BlockMode::ScoreOnly).unwrap();
    assert_eq!(bottom.bottom_dh, whole.bottom_dh);
}
