//! Property tests for the framed wire protocol: `read_frame` /
//! `write_frame` must round-trip any payload through any chunking of the
//! byte stream, turn every malformed or truncated stream into a *typed*
//! [`ProtoError`] without desynchronizing, and never block on input that
//! is already fully in memory (the in-memory readers here are finite, so
//! a hang would be an unbounded-read bug, not a timeout artifact).

use proptest::prelude::*;
use smx::server::proto::{read_frame, write_frame, ProtoError, Request, MAX_FRAME};
use smx::server::tenant::Priority;
use std::io::{Read, Write};

/// Reader that hands out the buffer in caller-chosen chunk sizes,
/// cycling through `chunks`: exercises the partial-header and
/// partial-payload paths of `read_frame`, which a `Cursor` (always
/// returning everything at once) never reaches.
struct ChunkedReader {
    data: Vec<u8>,
    pos: usize,
    chunks: Vec<usize>,
    turn: usize,
}

impl ChunkedReader {
    fn new(data: Vec<u8>, chunks: Vec<usize>) -> ChunkedReader {
        ChunkedReader { data, pos: 0, chunks, turn: 0 }
    }
}

impl Read for ChunkedReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let step = self.chunks[self.turn % self.chunks.len()].max(1);
        self.turn += 1;
        let n = step.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Writer that accepts at most `step` bytes per `write` call, forcing
/// `write_all` inside `write_frame` to loop across chunk boundaries.
struct ShortWriter {
    data: Vec<u8>,
    step: usize,
}

impl Write for ShortWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.step.max(1).min(buf.len());
        self.data.extend_from_slice(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Payload alphabet covering the wire format's interesting bytes: field
/// separators (tabs), the STATS newline case, multi-byte UTF-8, and
/// plain text.
fn payload_from(picks: &[usize]) -> String {
    const ATOMS: [&str; 8] = ["A", "z", "9", "\t", "\n", "é", "→", " "];
    picks.iter().map(|&p| ATOMS[p % ATOMS.len()]).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any frame sequence round-trips through any read chunking.
    #[test]
    fn frames_round_trip_across_chunk_boundaries(
        picks in proptest::collection::vec(
            proptest::collection::vec(0usize..8, 0..40), 1..5),
        chunks in proptest::collection::vec(1usize..7, 1..6),
    ) {
        let payloads: Vec<String> = picks.iter().map(|p| payload_from(p)).collect();
        let mut wire = Vec::new();
        for p in &payloads {
            write_frame(&mut wire, p).unwrap();
        }
        let mut r = ChunkedReader::new(wire, chunks);
        for p in &payloads {
            prop_assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(p.as_str()));
        }
        // Clean EOF *between* frames is the one non-error end state.
        prop_assert!(read_frame(&mut r).unwrap().is_none());
    }

    /// A writer that takes arbitrarily few bytes per call still emits
    /// the exact same wire bytes as an unconstrained one.
    #[test]
    fn short_writes_produce_identical_wire_bytes(
        picks in proptest::collection::vec(0usize..8, 0..200),
        step in 1usize..9,
    ) {
        let payload = payload_from(&picks);
        let mut direct = Vec::new();
        write_frame(&mut direct, &payload).unwrap();
        let mut short = ShortWriter { data: Vec::new(), step };
        write_frame(&mut short, &payload).unwrap();
        prop_assert_eq!(short.data, direct);
    }

    /// Truncating the stream anywhere inside a frame — mid-header or
    /// mid-payload — yields a typed I/O error, never a hang and never a
    /// silently short payload.
    #[test]
    fn truncation_inside_a_frame_is_a_typed_error(
        picks in proptest::collection::vec(0usize..8, 1..60),
        cut_pick in 0usize..10_000,
        chunks in proptest::collection::vec(1usize..5, 1..4),
    ) {
        let payload = payload_from(&picks);
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        // Cut strictly inside the frame: after at least one byte, before
        // the last.
        let cut = 1 + cut_pick % (wire.len() - 1);
        wire.truncate(cut);
        let mut r = ChunkedReader::new(wire, chunks);
        match read_frame(&mut r) {
            Err(ProtoError::Io(e)) => {
                prop_assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof);
            }
            other => prop_assert!(false, "truncated frame produced {other:?}"),
        }
    }

    /// A header announcing more than [`MAX_FRAME`] bytes is rejected as
    /// `Oversized` before any payload is read: the reader must not
    /// trust the peer's length for its allocation.
    #[test]
    fn oversized_header_is_rejected_without_reading_payload(
        extra in 1u64..u64::from(u32::MAX) - MAX_FRAME as u64,
    ) {
        let announced = (MAX_FRAME as u64 + extra) as u32;
        // Header only — if read_frame tried to consume the payload it
        // would report EOF instead of the required Oversized.
        let wire = announced.to_be_bytes().to_vec();
        match read_frame(&mut ChunkedReader::new(wire, vec![2])) {
            Err(ProtoError::Oversized(n)) => prop_assert_eq!(n, announced as usize),
            other => prop_assert!(false, "oversized header produced {other:?}"),
        }
    }

    /// Invalid UTF-8 payloads surface as `NotUtf8`, and the reader stays
    /// framed: the next frame on the stream is still readable.
    #[test]
    fn non_utf8_payload_is_typed_and_does_not_desync(
        junk in proptest::collection::vec(0u8..=255, 1..40),
        picks in proptest::collection::vec(0usize..8, 0..20),
    ) {
        // Force invalidity regardless of the generated bytes.
        let mut bad = junk;
        bad.push(0xFF);
        let mut wire = Vec::new();
        wire.extend_from_slice(&(bad.len() as u32).to_be_bytes());
        wire.extend_from_slice(&bad);
        let follow = payload_from(&picks);
        write_frame(&mut wire, &follow).unwrap();
        let mut r = ChunkedReader::new(wire, vec![3, 1, 7]);
        prop_assert!(matches!(read_frame(&mut r), Err(ProtoError::NotUtf8)));
        prop_assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(follow.as_str()));
    }

    /// Arbitrary byte soup never panics the reader and always terminates
    /// with `Ok` or a typed error (the reader is finite, so returning at
    /// all proves no unbounded blocking read).
    #[test]
    fn garbage_streams_terminate_with_ok_or_typed_error(
        soup in proptest::collection::vec(0u8..=255, 0..120),
        chunks in proptest::collection::vec(1usize..6, 1..5),
    ) {
        let mut r = ChunkedReader::new(soup, chunks);
        // Drain at most a bounded number of frames; garbage decodes to
        // at most len/4 zero-length frames before EOF or an error.
        let mut finished = false;
        for _ in 0..=120 {
            match read_frame(&mut r) {
                Ok(Some(_)) => {}
                Ok(None) | Err(_) => {
                    finished = true;
                    break;
                }
            }
        }
        prop_assert!(finished, "reader neither finished nor errored");
    }

    /// Request encode/parse round-trips for identifier-shaped fields and
    /// sequence payloads (the tab-separated format's own property).
    #[test]
    fn request_encode_parse_round_trips(
        id in 0usize..1_000_000,
        qp in proptest::collection::vec(0usize..4, 1..80),
        rp in proptest::collection::vec(0usize..4, 1..80),
        deadline in 0u64..100_000,
    ) {
        const BASES: [&str; 4] = ["A", "C", "G", "T"];
        let seq = |p: &[usize]| -> String { p.iter().map(|&i| BASES[i]).collect() };
        let reqs = [
            Request::Hello {
                session: format!("s-{id}"),
                tenant: format!("t{}", id % 7),
                priority: if id % 2 == 0 { Priority::Normal } else { Priority::Low },
                deadline_ms: deadline,
            },
            Request::Pair { id, query: seq(&qp), reference: seq(&rp) },
            Request::Bye,
        ];
        for req in reqs {
            let encoded = req.encode();
            prop_assert_eq!(Request::parse(&encoded).unwrap(), req);
        }
    }
}

/// Oversized payloads are refused on the *write* side too, before any
/// byte hits the wire — the peer never sees a torn giant frame.
#[test]
fn oversized_payload_refused_before_any_byte_is_written() {
    let big = "x".repeat(MAX_FRAME + 1);
    let mut wire = Vec::new();
    match write_frame(&mut wire, &big) {
        Err(ProtoError::Oversized(n)) => assert_eq!(n, MAX_FRAME + 1),
        other => panic!("oversized write produced {other:?}"),
    }
    assert!(wire.is_empty(), "refused frame leaked {} bytes", wire.len());
}

/// EOF exactly on a frame boundary is a clean end of stream; one byte
/// later it is a mid-frame death. The boundary case is load-bearing for
/// the server's shutdown path (clients that Bye and close).
#[test]
fn eof_on_frame_boundary_is_clean() {
    let mut wire = Vec::new();
    write_frame(&mut wire, "PING").unwrap();
    let full = wire.clone();
    let mut r = ChunkedReader::new(full, vec![1]);
    assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("PING"));
    assert!(read_frame(&mut r).unwrap().is_none());

    wire.push(0); // one stray header byte, then EOF
    let mut r = ChunkedReader::new(wire, vec![2]);
    assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("PING"));
    match read_frame(&mut r) {
        Err(ProtoError::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof),
        other => panic!("stray header byte produced {other:?}"),
    }
}
