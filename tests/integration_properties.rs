//! Heavier cross-crate property tests and simulator invariants: the
//! checks that tie the functional stack, the timing stack, and the
//! physical model together under randomized inputs.

use proptest::prelude::*;
use smx::align::{dp, AlignmentConfig, ElementWidth, Sequence};
use smx::coproc::block::BlockMode;
use smx::coproc::SmxCoprocessor;
use smx::prelude::*;
use smx::sim::coproc::{BlockShape, CoprocSim, CoprocTimingConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The heterogeneous device's alignment equals the golden model for
    /// random sequences in every configuration, and its CIGAR verifies.
    #[test]
    fn device_matches_golden_on_random_inputs(
        seed in 0u64..1000,
        m in 1usize..120,
        n in 1usize..120,
        cfg_idx in 0usize..4,
    ) {
        let config = AlignmentConfig::ALL[cfg_idx];
        let card = config.alphabet().cardinality() as u64;
        let gen = |mut x: u64, len: usize| -> Vec<u8> {
            (0..len).map(|_| { x ^= x << 13; x ^= x >> 7; x ^= x << 17; (x % card) as u8 }).collect()
        };
        let q = Sequence::from_codes(config.alphabet(), gen(seed | 1, m)).unwrap();
        let r = Sequence::from_codes(config.alphabet(), gen((seed * 31 + 7) | 1, n)).unwrap();
        let mut dev = SmxDevice::new(config, 2).unwrap();
        let aln = dev.align(&q, &r).unwrap();
        let golden = dp::score_only(q.codes(), r.codes(), &config.scoring());
        prop_assert_eq!(aln.score, golden);
        aln.verify(q.codes(), r.codes(), &config.scoring()).unwrap();
    }

    /// Exact algorithms agree with each other on every random pair.
    #[test]
    fn exact_algorithms_agree(
        seed in 0u64..1000,
        m in 1usize..150,
        n in 1usize..150,
    ) {
        let gen = |mut x: u64, len: usize| -> Vec<u8> {
            (0..len).map(|_| { x ^= x << 13; x ^= x >> 7; x ^= x << 17; (x % 4) as u8 }).collect()
        };
        let config = AlignmentConfig::DnaGap;
        let q = Sequence::from_codes(config.alphabet(), gen(seed | 1, m)).unwrap();
        let r = Sequence::from_codes(config.alphabet(), gen((seed * 131 + 3) | 1, n)).unwrap();
        let pair = SeqPair { query: q, reference: r };
        let mut aligner = SmxAligner::new(config);
        let full = aligner
            .algorithm(Algorithm::Full)
            .run_batch(std::slice::from_ref(&pair))
            .unwrap();
        let hirsch = aligner
            .algorithm(Algorithm::Hirschberg)
            .run_batch(std::slice::from_ref(&pair))
            .unwrap();
        let wide_band = aligner
            .algorithm(Algorithm::Banded { band: m.max(n) })
            .run_batch(std::slice::from_ref(&pair))
            .unwrap();
        prop_assert_eq!(full.outcomes[0].score, hirsch.outcomes[0].score);
        prop_assert_eq!(full.outcomes[0].score, wide_band.outcomes[0].score);
    }

    /// Coprocessor-simulator invariants hold for arbitrary geometries:
    /// the engine is never oversubscribed, every tile is issued, and the
    /// port carries exactly the ledger's line count.
    #[test]
    fn coproc_sim_invariants(
        m in 1usize..4000,
        n in 1usize..4000,
        workers in 1usize..8,
        blocks in 1usize..6,
        ew_idx in 0usize..4,
    ) {
        let ew = ElementWidth::ALL[ew_idx];
        let shape = BlockShape::from_dims(m, n, ew, false);
        let sim = CoprocSim::new(CoprocTimingConfig::for_ew(ew, workers));
        let r = sim.simulate_uniform(shape, blocks);
        prop_assert_eq!(r.tiles, shape.tiles() * blocks as u64);
        prop_assert!(r.utilization <= 1.0 + 1e-9);
        prop_assert!(r.cycles >= r.tiles, "engine accepts one tile/cycle");
        // Port ledger: per supertile, 4 fetch + 2 store lines.
        let st = (shape.tile_rows.div_ceil(shape.st_side)
            * shape.tile_cols.div_ceil(shape.st_side)) as u64;
        prop_assert_eq!(r.port_grants, st * 6 * blocks as u64);
    }

    /// Headline robustness invariant: at any injected fault rate the
    /// recovered alignment is byte-identical (score *and* CIGAR) to the
    /// fault-free run, and the recovery counters stay consistent
    /// (fallbacks <= retries <= faults injected, every fault detected).
    #[test]
    fn recovery_is_byte_identical_under_random_faults(
        seed in 0u64..10_000,
        m in 1usize..140,
        n in 1usize..140,
        cfg_idx in 0usize..4,
        rate in 0.0f64..0.6,
    ) {
        let config = AlignmentConfig::ALL[cfg_idx];
        let card = config.alphabet().cardinality() as u64;
        let gen = |mut x: u64, len: usize| -> Vec<u8> {
            (0..len).map(|_| { x ^= x << 13; x ^= x >> 7; x ^= x << 17; (x % card) as u8 }).collect()
        };
        let q = Sequence::from_codes(config.alphabet(), gen(seed | 1, m)).unwrap();
        let r = Sequence::from_codes(config.alphabet(), gen((seed * 31 + 7) | 1, n)).unwrap();

        let mut clean = SmxDevice::new(config, 2).unwrap();
        let reference = clean.align(&q, &r).unwrap();

        let mut faulty = SmxDevice::new(config, 2).unwrap();
        faulty.enable_fault_injection(FaultPlan::new(seed, rate), RecoveryPolicy::default());
        let recovered = faulty.align(&q, &r).unwrap();

        prop_assert_eq!(recovered.score, reference.score);
        prop_assert_eq!(recovered.cigar.to_string(), reference.cigar.to_string());
        let s = faulty.recovery_stats();
        prop_assert!(s.invariants_hold(), "counter invariants violated: {:?}", s);
        prop_assert_eq!(s.faults_detected, s.faults_injected);
        prop_assert!(s.fallbacks <= s.retries || s.retries == 0);
        prop_assert!(s.fallbacks + s.retries == 0 || s.faults_injected > 0);
    }

    /// With retries and tile fallback disabled, graceful degradation to
    /// the software golden model still reproduces the fault-free output
    /// byte for byte.
    #[test]
    fn strict_policy_degrades_byte_identically(
        seed in 0u64..10_000,
        m in 1usize..100,
        n in 1usize..100,
        rate in 0.05f64..1.0,
    ) {
        let config = AlignmentConfig::DnaGap;
        let gen = |mut x: u64, len: usize| -> Vec<u8> {
            (0..len).map(|_| { x ^= x << 13; x ^= x >> 7; x ^= x << 17; (x % 4) as u8 }).collect()
        };
        let q = Sequence::from_codes(config.alphabet(), gen(seed | 1, m)).unwrap();
        let r = Sequence::from_codes(config.alphabet(), gen((seed * 131 + 3) | 1, n)).unwrap();

        let mut clean = SmxDevice::new(config, 2).unwrap();
        let reference = clean.align(&q, &r).unwrap();

        let mut faulty = SmxDevice::new(config, 2).unwrap();
        faulty.enable_fault_injection(FaultPlan::new(seed, rate), RecoveryPolicy::strict());
        let recovered = faulty.align(&q, &r).unwrap();

        prop_assert_eq!(recovered.score, reference.score);
        prop_assert_eq!(recovered.cigar.to_string(), reference.cigar.to_string());
        let s = faulty.recovery_stats();
        prop_assert!(s.software_alignments <= 1);
        prop_assert!(s.faults_injected == 0 || s.software_alignments == 1,
            "a strict-policy fault must degrade to software: {:?}", s);
    }

    /// Timing monotonicity: more work never takes fewer cycles, on any
    /// engine.
    #[test]
    fn timing_monotone_in_cells(
        base in 64usize..1200,
        factor in 2usize..4,
        engine_idx in 0usize..4,
    ) {
        use smx::algos::timing::{estimate, BatchWork, EngineKind};
        use smx::algos::AlgoOutcome;
        let engines = [EngineKind::Simd, EngineKind::Smx1d, EngineKind::Smx2d, EngineKind::Smx];
        let engine = engines[engine_idx];
        let mk = |len: usize| {
            let mut o = AlgoOutcome::new();
            o.cells_computed = (len * len) as u64;
            o.blocks.push((len, len));
            o.pack_chars = 2 * len as u64;
            BatchWork::from_outcomes(AlignmentConfig::DnaEdit, true, &[o])
        };
        let small = estimate(engine, &mk(base), 4).cycles;
        let large = estimate(engine, &mk(base * factor), 4).cycles;
        prop_assert!(large >= small, "{engine}: {large} < {small}");
    }
}

#[test]
fn border_store_memory_matches_ledger() {
    // The functional border store and the timing ledger must agree on
    // the traceback-memory bytes for the same block.
    for config in AlignmentConfig::ALL {
        let ew = config.element_width();
        let coproc = SmxCoprocessor::new(ew, &config.scoring(), 1).unwrap();
        let card = config.alphabet().cardinality() as u32;
        let q: Vec<u8> = (0..600u32).map(|i| (i.wrapping_mul(7) % card) as u8).collect();
        let out = coproc.compute_block(&q, &q, None, BlockMode::Traceback).unwrap();
        let store = out.borders.as_ref().unwrap();
        // Count stored border elements (inputs per tile).
        let mut elements = 0usize;
        for ti in 0..store.tile_rows() {
            for tj in 0..store.tile_cols() {
                let t = store.input(ti, tj);
                elements += t.rows() + t.cols();
            }
        }
        let ledger_bits = out.stats.border_bytes_stored * 8;
        let actual_bits = (elements * ew.bits() as usize) as u64;
        // The ledger rounds tiles to whole bytes; allow that slack.
        assert!(
            ledger_bits >= actual_bits && ledger_bits <= actual_bits + out.stats.tiles * 8,
            "{config}: ledger {ledger_bits} vs actual {actual_bits}"
        );
    }
}

#[test]
fn degenerate_block_shapes_work() {
    // 1xN and Nx1 blocks exercise the partial-tile edges everywhere.
    for config in AlignmentConfig::ALL {
        let scheme = config.scoring();
        let coproc = SmxCoprocessor::new(config.element_width(), &scheme, 2).unwrap();
        let card = config.alphabet().cardinality() as u32;
        let long: Vec<u8> = (0..150u32).map(|i| (i.wrapping_mul(11) % card) as u8).collect();
        let one = vec![long[0]];
        for (q, r) in [(&one, &long), (&long, &one)] {
            let out = coproc.compute_block(q, r, None, BlockMode::Traceback).unwrap();
            assert_eq!(out.score, dp::score_only(q, r, &scheme), "{config}");
            let (cigar, _) = coproc.traceback(q, r, &out).unwrap();
            assert_eq!(cigar.score(q, r, &scheme).unwrap(), out.score, "{config}");
        }
    }
}

#[test]
fn simd_alignment_mode_degrades_with_cache_spill() {
    // The Fig. 9 cache story: a 10K-class full-alignment working set
    // spills past the LLC and slows the SIMD baseline per cell.
    use smx::algos::timing::{estimate, BatchWork, EngineKind};
    use smx::algos::AlgoOutcome;
    let mk = |len: usize, score_only: bool| {
        let mut o = AlgoOutcome::new();
        o.cells_computed = (len * len) as u64;
        o.blocks.push((len, len));
        o.traceback_steps = if score_only { 0 } else { 2 * len as u64 };
        o.pack_chars = 2 * len as u64;
        BatchWork::from_outcomes(AlignmentConfig::DnaEdit, score_only, &[o])
    };
    let per_cell = |len: usize, score_only: bool| {
        estimate(EngineKind::Simd, &mk(len, score_only), 4).cycles / (len * len) as f64
    };
    let small_aln = per_cell(1000, false);
    let big_aln = per_cell(10_000, false);
    assert!(big_aln > 1.1 * small_aln, "alignment: {big_aln} vs {small_aln}");
    let small_score = per_cell(1000, true);
    let big_score = per_cell(10_000, true);
    assert!(big_score < 1.1 * small_score, "score stays cached: {big_score} vs {small_score}");
}
