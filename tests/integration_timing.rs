//! Timing-model integration: the simulated performance relationships the
//! paper's evaluation rests on (Figs. 9–12) must hold end to end through
//! the aligner API.

use smx::datagen::ErrorProfile;
use smx::prelude::*;
use smx::sim::coproc::{BlockShape, CoprocSim, CoprocTimingConfig};
use smx::sim::system::multicore_speedup;

fn batch(config: AlignmentConfig, len: usize, count: usize) -> Dataset {
    Dataset::synthetic(config, len, count, ErrorProfile::moderate(), 31)
}

#[test]
fn engine_ordering_for_score_workloads() {
    // SMX < SMX-2D ≈ SMX (score-only), SMX-1D < SIMD cycles.
    let ds = batch(AlignmentConfig::DnaEdit, 1000, 8);
    let mut aligner = SmxAligner::new(ds.config);
    aligner.algorithm(Algorithm::Full).score_only(true);
    let cycles =
        |e: EngineKind, a: &mut SmxAligner| a.engine(e).run_batch(&ds.pairs).unwrap().timing.cycles;
    let simd = cycles(EngineKind::Simd, &mut aligner);
    let smx1d = cycles(EngineKind::Smx1d, &mut aligner);
    let smx = cycles(EngineKind::Smx, &mut aligner);
    assert!(smx1d < simd, "smx-1d {smx1d} vs simd {simd}");
    assert!(smx < smx1d, "smx {smx} vs smx-1d {smx1d}");
    let speedup = simd / smx;
    assert!(speedup > 100.0, "heterogeneous speedup {speedup}");
}

#[test]
fn speedup_grows_with_block_size() {
    // Fig. 9: SMX speedups grow from 100x100 to 10Kx10K blocks.
    let mut prev = 0.0;
    for len in [100usize, 1000, 4000] {
        let ds = batch(AlignmentConfig::DnaGap, len, 8);
        let mut aligner = SmxAligner::new(ds.config);
        aligner.algorithm(Algorithm::Full).score_only(true);
        let simd = aligner.engine(EngineKind::Simd).run_batch(&ds.pairs).unwrap().timing.cycles;
        let smx = aligner.engine(EngineKind::Smx).run_batch(&ds.pairs).unwrap().timing.cycles;
        let speedup = simd / smx;
        assert!(speedup > prev, "len {len}: {speedup} <= {prev}");
        prev = speedup;
    }
}

#[test]
fn worker_sweep_matches_fig10_shape() {
    let shape = BlockShape::from_dims(10_000, 10_000, smx::align::ElementWidth::W2, false);
    let mut utils = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let sim = CoprocSim::new(CoprocTimingConfig::for_ew(smx::align::ElementWidth::W2, workers));
        utils.push(sim.simulate_uniform(shape, 8).utilization);
    }
    assert!(utils[0] < 0.55, "1 worker {}", utils[0]);
    assert!(utils[2] > 0.80, "4 workers {}", utils[2]);
    // Beyond 4 workers gains are marginal (paper §8.1).
    assert!(utils[3] - utils[2] < 0.12, "8 vs 4: {} vs {}", utils[3], utils[2]);
}

#[test]
fn multicore_scaling_is_near_linear() {
    // Fig. 12: blocks fit private caches, so DRAM traffic is small.
    let ds = batch(AlignmentConfig::DnaEdit, 2000, 4);
    let rep = SmxAligner::new(ds.config)
        .algorithm(Algorithm::Hirschberg)
        .engine(EngineKind::Smx)
        .run_batch(&ds.pairs)
        .unwrap();
    let dram_bytes = 2.0 * 2000.0 * 4.0; // sequences in, borders out
    for cores in [2usize, 4, 8] {
        let s = multicore_speedup(rep.timing.cycles, dram_bytes, cores, 23.9);
        assert!(s > 0.9 * cores as f64, "{cores} cores: {s}");
    }
}

#[test]
fn utilization_and_core_budget_reported() {
    let ds = batch(AlignmentConfig::Protein, 350, 16);
    let rep = SmxAligner::new(ds.config)
        .algorithm(Algorithm::Full)
        .score_only(true)
        .engine(EngineKind::Smx)
        .run_batch(&ds.pairs)
        .unwrap();
    // Protein score-only: engine busy, core nearly idle (Fig. 12 right).
    assert!(rep.timing.engine_utilization > 0.2, "{}", rep.timing.engine_utilization);
    assert!(rep.timing.core_busy_frac < 0.6, "{}", rep.timing.core_busy_frac);
}

#[test]
fn fig9_anchor_ratios_hold_within_band() {
    // Regression lock on the calibration: the 10K score-mode SMX/SIMD
    // ratios must stay within a factor of ~1.5 of the paper's anchors
    // (1465 / 379 / 778 / 96). Timing-only, so full 10K dims are cheap.
    use smx::algos::timing::{estimate, BatchWork, EngineKind};
    use smx::algos::AlgoOutcome;
    let anchors = [
        (AlignmentConfig::DnaEdit, 1465.0),
        (AlignmentConfig::DnaGap, 379.0),
        (AlignmentConfig::Protein, 778.0),
        (AlignmentConfig::Ascii, 96.0),
    ];
    for (config, paper) in anchors {
        let outcomes: Vec<AlgoOutcome> = (0..4)
            .map(|_| {
                let mut o = AlgoOutcome::new();
                o.cells_computed = 100_000_000;
                o.blocks.push((10_000, 10_000));
                o.pack_chars = 20_000;
                o
            })
            .collect();
        let work = BatchWork::from_outcomes(config, true, &outcomes);
        let simd = estimate(EngineKind::Simd, &work, 4).cycles;
        let smx = estimate(EngineKind::Smx, &work, 4).cycles;
        let ratio = simd / smx;
        assert!(
            ratio > paper / 1.6 && ratio < paper * 1.6,
            "{config}: measured {ratio:.0}x vs paper {paper:.0}x"
        );
    }
}

#[test]
fn alignment_mode_costs_more_than_score_mode() {
    let ds = batch(AlignmentConfig::DnaEdit, 1500, 4);
    let mut aligner = SmxAligner::new(ds.config);
    aligner.algorithm(Algorithm::Full).engine(EngineKind::Smx);
    let with_tb = aligner.score_only(false).run_batch(&ds.pairs).unwrap().timing.cycles;
    let score = aligner.score_only(true).run_batch(&ds.pairs).unwrap().timing.cycles;
    assert!(with_tb >= score, "{with_tb} vs {score}");
}
