//! Algorithm-level integration: recall and work accounting across the
//! practical algorithms on generated datasets (the functional backbone of
//! Figs. 2, 11, and 14).

use smx::algos::xdrop;
use smx::align::dp;
use smx::datagen::ErrorProfile;
use smx::prelude::*;

fn optimal_scores(ds: &Dataset) -> Vec<i32> {
    let scheme = ds.config.scoring();
    ds.pairs.iter().map(|p| dp::score_only(p.query.codes(), p.reference.codes(), &scheme)).collect()
}

#[test]
fn exact_algorithms_have_full_recall() {
    let ds = Dataset::synthetic(AlignmentConfig::DnaEdit, 600, 5, ErrorProfile::ont(), 11);
    let optimal = optimal_scores(&ds);
    for algo in [Algorithm::Full, Algorithm::Hirschberg] {
        let rep = SmxAligner::new(ds.config).algorithm(algo).run_batch(&ds.pairs).unwrap();
        assert_eq!(rep.recall(&optimal), 1.0, "{}", algo.name());
    }
}

#[test]
fn banded_with_adequate_band_has_full_recall() {
    let ds = Dataset::synthetic(AlignmentConfig::DnaGap, 800, 5, ErrorProfile::moderate(), 13);
    let optimal = optimal_scores(&ds);
    let band = xdrop::band_for_error_rate(800, 0.03);
    let rep = SmxAligner::new(ds.config)
        .algorithm(Algorithm::Banded { band })
        .run_batch(&ds.pairs)
        .unwrap();
    assert_eq!(rep.recall(&optimal), 1.0);
    // And it computes a small fraction of the matrix.
    assert!(rep.work.cells < 800 * 800 * 5 / 2);
}

#[test]
fn xdrop_keeps_recall_on_homologous_pairs() {
    let ds = Dataset::synthetic(AlignmentConfig::DnaGap, 700, 6, ErrorProfile::moderate(), 17);
    let optimal = optimal_scores(&ds);
    let band = xdrop::band_for_error_rate(700, 0.03);
    let rep = SmxAligner::new(ds.config)
        .algorithm(Algorithm::Xdrop { band, fraction: 0.08 })
        .run_batch(&ds.pairs)
        .unwrap();
    assert!(rep.recall(&optimal) >= 0.8, "recall {}", rep.recall(&optimal));
}

#[test]
fn window_recall_collapses_on_indel_heavy_reads() {
    // The Fig. 14 story: the window heuristic loses the global optimum on
    // ONT-like reads spanning structural variants, while exact algorithms
    // keep it.
    let ds = Dataset::ont_sv_like(AlignmentConfig::DnaEdit, 3000, 500, 4, 19);
    let optimal = optimal_scores(&ds);
    let win = SmxAligner::new(ds.config)
        .algorithm(Algorithm::Window { w: 320, o: 128 })
        .run_batch(&ds.pairs)
        .unwrap();
    let hirsch =
        SmxAligner::new(ds.config).algorithm(Algorithm::Hirschberg).run_batch(&ds.pairs).unwrap();
    assert_eq!(hirsch.recall(&optimal), 1.0);
    assert!(
        win.recall(&optimal) < hirsch.recall(&optimal),
        "window {} vs hirschberg {}",
        win.recall(&optimal),
        hirsch.recall(&optimal)
    );
}

#[test]
fn work_accounting_is_ordered_as_figure_2() {
    // cells computed: hirschberg > full > banded > xdrop(similar) and
    // stored: full >> banded > hirschberg.
    let ds = Dataset::synthetic(AlignmentConfig::DnaEdit, 1000, 2, ErrorProfile::moderate(), 23);
    let mut aligner = SmxAligner::new(ds.config);
    let full = aligner.algorithm(Algorithm::Full).run_batch(&ds.pairs).unwrap();
    let hirsch = aligner.algorithm(Algorithm::Hirschberg).run_batch(&ds.pairs).unwrap();
    let band = aligner
        .algorithm(Algorithm::Banded { band: xdrop::band_for_error_rate(1000, 0.03) })
        .run_batch(&ds.pairs)
        .unwrap();
    assert!(hirsch.work.cells > full.work.cells);
    assert!(band.work.cells < full.work.cells);
    let stored =
        |r: &smx::aligner::BatchReport| -> u64 { r.outcomes.iter().map(|o| o.cells_stored).sum() };
    assert!(stored(&full) > stored(&band));
    assert!(stored(&band) > stored(&hirsch));
}

#[test]
fn protein_pipeline_end_to_end() {
    let ds = Dataset::uniprot_like(6, 29);
    let optimal = optimal_scores(&ds);
    let rep = SmxAligner::new(AlignmentConfig::Protein)
        .algorithm(Algorithm::Full)
        .run_batch(&ds.pairs)
        .unwrap();
    assert_eq!(rep.recall(&optimal), 1.0);
    for (o, p) in rep.outcomes.iter().zip(&ds.pairs) {
        let aln = o.alignment.as_ref().unwrap();
        aln.verify(p.query.codes(), p.reference.codes(), &ds.config.scoring()).unwrap();
    }
}
