//! Integration tests for the extension surface: the affine/local/
//! semi-global golden models, the Myers and WFA software baselines, the
//! adaptive band, matrix/CIGAR parsing, and failure injection on the
//! coprocessor's border store.

use smx::algos::adaptive;
use smx::algos::baselines::{myers, wfa, wfa_affine};
use smx::align::{dp, dp_affine, dp_local, dp_semiglobal, Cigar, ScoringScheme, SubstMatrix};
use smx::coproc::block::BlockMode;
use smx::coproc::SmxCoprocessor;
use smx::prelude::*;

fn dna(len: usize, seed: u64) -> Vec<u8> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % 4) as u8
        })
        .collect()
}

#[test]
fn edit_distance_engines_agree() {
    // Golden DP, Myers bit-parallel, WFA, and the SMX device must all
    // produce the same edit distance.
    let r = dna(500, 3);
    let mut q = r.clone();
    q[100] ^= 1;
    q.remove(300);
    q.insert(400, 2);

    let golden = dp::edit_distance(&q, &r);
    assert_eq!(myers::edit_distance(&q, &r, 4).unwrap(), golden);
    assert_eq!(wfa::edit_distance(&q, &r).unwrap().distance, golden);

    let mut dev = SmxDevice::new(AlignmentConfig::DnaEdit, 4).unwrap();
    let qs = Sequence::from_codes(Alphabet::Dna2, q.clone()).unwrap();
    let rs = Sequence::from_codes(Alphabet::Dna2, r.clone()).unwrap();
    assert_eq!(-dev.score(&qs, &rs).unwrap() as u32, golden);
}

#[test]
fn affine_wfa_and_gotoh_agree_on_reads() {
    let scheme = dp_affine::AffineScheme::minimap2();
    let r = dna(300, 9);
    let mut q = r.clone();
    q.drain(120..150); // one 30-base gap: affine's home turf
    let gotoh = dp_affine::affine_score(&q, &r, &scheme);
    let wfa = wfa_affine::affine_wfa_score_general(&q, &r, &scheme).unwrap();
    assert_eq!(wfa.score, gotoh);
    // One consolidated gap must beat thirty unit gaps under affine.
    let linear_equiv = ScoringScheme::linear(2, -4, -4).unwrap();
    let linear = dp::score_only(&q, &r, &linear_equiv);
    assert!(gotoh > linear, "affine {gotoh} vs linear-style {linear}");
}

#[test]
fn alignment_mode_hierarchy() {
    // local >= semiglobal >= global for any pair and scheme.
    let scheme = ScoringScheme::linear(2, -3, -3).unwrap();
    for seed in [1u64, 7, 23, 99] {
        let q = dna(60, seed);
        let r = dna(90, seed * 31 + 5);
        let global = dp::score_only(&q, &r, &scheme);
        let semi = dp_semiglobal::semiglobal_score(&q, &r, &scheme);
        let local = dp_local::local_score(&q, &r, &scheme);
        assert!(semi >= global, "seed {seed}");
        assert!(local >= semi, "seed {seed}");
    }
}

#[test]
fn adaptive_band_through_the_aligner() {
    let ds = Dataset::synthetic(
        AlignmentConfig::DnaEdit,
        800,
        4,
        smx::datagen::ErrorProfile::moderate(),
        55,
    );
    let optimal: Vec<i32> = ds
        .pairs
        .iter()
        .map(|p| dp::score_only(p.query.codes(), p.reference.codes(), &ds.config.scoring()))
        .collect();
    let rep = SmxAligner::new(ds.config)
        .algorithm(Algorithm::AdaptiveBanded { width: 65 })
        .run_batch(&ds.pairs)
        .unwrap();
    assert_eq!(rep.recall(&optimal), 1.0);
    assert!(rep.work.cells < 2 * 801 * 66 * 4);
}

#[test]
fn adaptive_direct_call_matches_golden() {
    let scheme = ScoringScheme::edit();
    let r = dna(400, 41);
    let mut q = r.clone();
    q.drain(100..140);
    let out = adaptive::adaptive_banded_align(&q, &r, &scheme, 120, true);
    assert_eq!(out.score, Some(dp::score_only(&q, &r, &scheme)));
    out.alignment.unwrap().verify(&q, &r, &scheme).unwrap();
}

#[test]
fn parsed_matrix_flows_through_the_stack() {
    // Write BLOSUM62 in NCBI format, parse it back, align with it on the
    // coprocessor, and match the golden model.
    let mut text = Vec::new();
    smx_io::matrix::write(&mut text, &SubstMatrix::blosum62()).unwrap();
    let parsed = smx_io::matrix::parse(text.as_slice()).unwrap();
    let scheme = ScoringScheme::matrix(parsed, -6).unwrap();

    let q: Vec<u8> = b"HEAGAWGHEE".iter().map(|c| c - b'A').collect();
    let r: Vec<u8> = b"PAWHEAE".iter().map(|c| c - b'A').collect();
    let coproc = SmxCoprocessor::new(smx::align::ElementWidth::W6, &scheme, 2).unwrap();
    let out = coproc.compute_block(&q, &r, None, BlockMode::ScoreOnly).unwrap();
    assert_eq!(out.score, dp::score_only(&q, &r, &scheme));
}

#[test]
fn cigar_parse_roundtrips_device_output() {
    let mut dev = SmxDevice::new(AlignmentConfig::DnaGap, 2).unwrap();
    let q = Sequence::from_codes(Alphabet::Dna4, dna(120, 5)).unwrap();
    let r = Sequence::from_codes(Alphabet::Dna4, dna(110, 77)).unwrap();
    let aln = dev.align(&q, &r).unwrap();
    let text = aln.cigar.to_string();
    let back = Cigar::parse(&text).unwrap();
    assert_eq!(back, aln.cigar);
    let stats = back.stats();
    assert_eq!(stats.matches + stats.mismatches + stats.insertions, q.len() as u64);
}

#[test]
fn corrupted_border_store_is_detected() {
    // Failure injection: recompute a tile against sequences that do not
    // match the stored block; the traceback must fail loudly instead of
    // emitting a wrong alignment.
    let config = AlignmentConfig::DnaEdit;
    let coproc = SmxCoprocessor::new(config.element_width(), &config.scoring(), 2).unwrap();
    // An identical pair gives a distinctive stored optimum (score 0).
    let r = dna(100, 29);
    let q = r.clone();
    let out = coproc.compute_block(&q, &r, None, BlockMode::Traceback).unwrap();
    assert_eq!(out.score, 0);
    // Tamper: swap the query for an unrelated sequence of equal length.
    let tampered = dna(100, 9999);
    let result = coproc.traceback(&tampered, &r, &out);
    match result {
        Err(_) => {}
        Ok((cigar, _)) => {
            // If a path still exists numerically it must NOT re-score to
            // the stored optimum against the tampered sequences.
            let claimed = out.score;
            let actual = cigar.score(&tampered, &r, &config.scoring());
            assert!(actual.is_err() || actual.unwrap() != claimed);
        }
    }
}

#[test]
fn myers_and_wfa_reject_invalid_inputs() {
    assert!(myers::edit_distance(&[], &[0], 4).is_err());
    assert!(myers::edit_distance(&[7], &[0], 4).is_err());
    assert!(wfa::edit_distance(&[], &[0]).is_err());
    let bad = dp_affine::AffineScheme::minimap2();
    assert!(wfa_affine::affine_wfa_score(&[0], &[0], &bad).is_err());
}
