//! Failpoint-driven chaos regression tests: the deterministic, seconds-
//! scale versions of what `chaos_storm` exercises at scale. Compiled
//! only with the `failpoints` feature (`cargo test --features
//! failpoints`); without it this file is empty and the default test run
//! is unaffected.
//!
//! The failpoint registry is process-global, so every test here takes
//! [`registry_lock`] for its whole body and clears the registry before
//! releasing it — tests in this binary serialize, tests in other
//! binaries are other processes.
#![cfg(feature = "failpoints")]

use smx::failpoint::{self, Action, FailSchedule};
use smx::prelude::*;
use smx::server::proto::{read_frame, write_frame, ProtoError};
use smx::service::{BatchExecutor, BreakerConfig, ExecutorConfig};
use std::sync::{Mutex, MutexGuard, PoisonError};

static REGISTRY: Mutex<()> = Mutex::new(());

/// Exclusive access to the process-global failpoint registry, cleared on
/// drop so a failing test cannot leak its schedule into the next one.
fn registry_lock() -> impl Drop {
    struct Guard(#[allow(dead_code)] MutexGuard<'static, ()>);
    impl Drop for Guard {
        fn drop(&mut self) {
            failpoint::clear();
        }
    }
    Guard(REGISTRY.lock().unwrap_or_else(PoisonError::into_inner))
}

fn dna(text: &str) -> Sequence {
    Sequence::from_text(Alphabet::Dna2, text).unwrap()
}

/// The `proto.write_frame` Partial injection leaves a torn frame on the
/// wire (header + half payload), returns a typed I/O error to the
/// sender, and the receiving side reports the tear as a typed
/// `UnexpectedEof` — the full sender-dies-mid-frame story, both ends
/// typed, no hang.
#[test]
fn torn_write_frame_is_typed_on_both_ends() {
    let _guard = registry_lock();
    failpoint::install(FailSchedule::new(1).rule(
        "proto.write_frame",
        None,
        Action::Partial,
        1.0,
        Some(1),
    ));

    let mut wire = Vec::new();
    match write_frame(&mut wire, "RESULT\t7\tok") {
        Err(ProtoError::Io(_)) => {}
        other => panic!("torn write reported {other:?}"),
    }
    assert!(
        !wire.is_empty() && wire.len() < 4 + "RESULT\t7\tok".len(),
        "partial injection should leave a strict prefix on the wire, got {} bytes",
        wire.len()
    );

    match read_frame(&mut wire.as_slice()) {
        Err(ProtoError::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof),
        other => panic!("torn frame read back as {other:?}"),
    }

    // The schedule's one-hit limit is spent: the very next frame flows
    // clean over the same (now reset) wire — faults always stop.
    let mut wire = Vec::new();
    write_frame(&mut wire, "RESULT\t7\tok").unwrap();
    assert_eq!(read_frame(&mut wire.as_slice()).unwrap().as_deref(), Some("RESULT\t7\tok"));
}

/// Quarantine liveness: a schedule poisons one pool lane so every
/// dispatch on it fails for a bounded burst. The breaker must quarantine
/// the lane, the canary ladder must readmit it once the faults stop, and
/// a bounded number of retry rounds must reach a clean pass — the lane
/// never stays dead and the batch never wedges.
#[test]
fn poisoned_lane_is_quarantined_then_canary_readmitted() {
    let _guard = registry_lock();
    failpoint::install(FailSchedule::new(7).rule(
        "pool.dispatch",
        Some(1),
        Action::Error,
        1.0,
        Some(12),
    ));

    let exec = BatchExecutor::new(
        SmxDevice::new(AlignmentConfig::DnaEdit, 2).unwrap(),
        ExecutorConfig {
            jobs: 2,
            queue_cap: 256,
            devices: 3,
            breaker: Some(BreakerConfig::default()),
            quarantine: Some(QuarantineConfig::default()),
            ..ExecutorConfig::default()
        },
    )
    .unwrap();

    let pairs: Vec<(Sequence, Sequence)> = (0..120)
        .map(|i| {
            let q = format!("ACGT{}AC", ["A", "C", "G", "T"][i % 4].repeat(8));
            let r = q.replace("GT", "GG");
            (dna(&q), dna(&r))
        })
        .collect();

    let mut readmissions = 0;
    let mut quarantines = 0;
    let mut pending = pairs;
    let mut rounds = 0;
    loop {
        rounds += 1;
        assert!(rounds <= 6, "batch never reached a clean pass over the healed pool");
        let report = exec.run(&pending);
        readmissions += report.stats.readmissions;
        quarantines += report.stats.quarantines;
        let failed: Vec<(Sequence, Sequence)> =
            report.failures().iter().map(|f| pending[f.index].clone()).collect();
        if failed.is_empty() {
            break;
        }
        pending = failed;
    }
    assert!(quarantines >= 1, "a lane failing 12 straight dispatches was never quarantined");
    assert!(
        readmissions >= 1,
        "the poisoned lane was never canary-readmitted after its faults stopped"
    );
}

/// While `pool.canary` is forced to fail, the quarantined lane must stay
/// out (no premature readmission on a failing canary); once the canary
/// faults stop, readmission follows.
#[test]
fn failing_canaries_block_readmission_until_they_heal() {
    let _guard = registry_lock();
    failpoint::install(
        FailSchedule::new(9).rule("pool.dispatch", Some(1), Action::Error, 1.0, Some(10)).rule(
            "pool.canary",
            Some(1),
            Action::Error,
            1.0,
            Some(4),
        ),
    );

    let exec = BatchExecutor::new(
        SmxDevice::new(AlignmentConfig::DnaEdit, 2).unwrap(),
        ExecutorConfig {
            jobs: 2,
            queue_cap: 256,
            devices: 3,
            breaker: Some(BreakerConfig::default()),
            quarantine: Some(QuarantineConfig::default()),
            ..ExecutorConfig::default()
        },
    )
    .unwrap();

    let pairs: Vec<(Sequence, Sequence)> = (0..150)
        .map(|i| {
            let q = format!("TTGCA{}T", ["A", "C", "G", "T"][i % 4].repeat(6));
            let r = q.replace("CA", "CC");
            (dna(&q), dna(&r))
        })
        .collect();

    let mut canary_failures = 0;
    let mut readmissions = 0;
    let mut pending = pairs;
    for _ in 0..6 {
        let report = exec.run(&pending);
        canary_failures += report.stats.canary_failures;
        readmissions += report.stats.readmissions;
        let failed: Vec<(Sequence, Sequence)> =
            report.failures().iter().map(|f| pending[f.index].clone()).collect();
        if failed.is_empty() && readmissions >= 1 {
            break;
        }
        if !failed.is_empty() {
            pending = failed;
        }
    }
    assert!(
        canary_failures >= 1,
        "the canary failpoint never fired — readmission was not canary-gated"
    );
    assert!(readmissions >= 1, "lane was never readmitted after canary faults stopped");
}

/// Feature sanity: an installed empty schedule injects nothing, and a
/// cleared registry leaves every site a no-op.
#[test]
fn empty_or_cleared_schedule_injects_nothing() {
    let _guard = registry_lock();
    failpoint::install(FailSchedule::new(3));
    let mut wire = Vec::new();
    write_frame(&mut wire, "HELLO").unwrap();
    assert_eq!(read_frame(&mut wire.as_slice()).unwrap().as_deref(), Some("HELLO"));

    failpoint::clear();
    let mut wire = Vec::new();
    write_frame(&mut wire, "BYE").unwrap();
    assert_eq!(read_frame(&mut wire.as_slice()).unwrap().as_deref(), Some("BYE"));
}
