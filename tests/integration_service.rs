//! Integration: the resilient batch service against crash-safe
//! checkpoint manifests. The property under test is the resume
//! invariant: *a batch interrupted at any point and resumed from its
//! manifest produces byte-identical output to an uninterrupted run* —
//! regardless of where the crash landed (between lines, mid-line, or
//! before the first checkpoint), of pool width, and of fault injection.

use proptest::prelude::*;
use smx::prelude::*;
use smx::service::RunOptions;
use smx_io::checkpoint::{CheckpointWriter, Manifest};
use smx_io::IoError;

fn gen_batch(
    config: AlignmentConfig,
    count: usize,
    len: usize,
    seed: u64,
) -> Vec<(Sequence, Sequence)> {
    let card = config.alphabet().cardinality() as u64;
    let gen = |mut x: u64, len: usize| -> Vec<u8> {
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % card) as u8
            })
            .collect()
    };
    (0..count as u64)
        .map(|p| {
            let q =
                Sequence::from_codes(config.alphabet(), gen(seed * 977 + p * 31 + 1, len)).unwrap();
            let r =
                Sequence::from_codes(config.alphabet(), gen(seed * 613 + p * 47 + 5, len)).unwrap();
            (q, r)
        })
        .collect()
}

fn storm_executor(config: AlignmentConfig, seed: u64, jobs: usize) -> BatchExecutor {
    let mut dev = SmxDevice::new(config, 2).unwrap();
    dev.enable_fault_injection(FaultPlan::new(seed ^ 0x5a5a, 0.05), RecoveryPolicy::default());
    BatchExecutor::new(dev, ExecutorConfig { jobs, ..ExecutorConfig::default() }).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Crash-at-any-byte: truncate the manifest anywhere (torn final
    /// line included) and the resumed batch re-emits exactly the
    /// uninterrupted run's outcomes.
    #[test]
    fn resume_is_byte_identical_after_crash_at_any_point(
        cut_permille in 0usize..1000,
        seed in 0u64..40,
    ) {
        let config = AlignmentConfig::DnaGap;
        let pairs = gen_batch(config, 8, 50, seed);
        let exec = storm_executor(config, seed, 2);

        // Uninterrupted run, checkpointing every completion.
        let mut manifest_bytes = Vec::new();
        let mut writer = CheckpointWriter::new(&mut manifest_bytes);
        let mut on_result = |i: usize, a: &Alignment| writer.record(i, a).unwrap();
        let full = exec.run_with(
            &pairs,
            RunOptions { on_result: Some(&mut on_result), ..RunOptions::default() },
        );
        prop_assert!(full.all_succeeded());
        drop(writer); // flush-on-drop; releases the borrow of the buffer

        // The crash leaves an arbitrary prefix of the manifest behind.
        let cut = manifest_bytes.len() * cut_permille / 1000;
        let manifest = Manifest::parse(&manifest_bytes[..cut]).unwrap();
        let resumed = exec.run_with(
            &pairs,
            RunOptions { resume: Some(&manifest.completed), ..RunOptions::default() },
        );
        prop_assert!(resumed.all_succeeded());
        prop_assert_eq!(&resumed.outcomes, &full.outcomes);
        prop_assert_eq!(resumed.stats.resumed as usize, manifest.completed.len());
    }
}

/// Disk roundtrip through the real file paths: create → truncate (the
/// crash) → load → resume appending into the same manifest → a third
/// run resumes everything and computes nothing.
#[test]
fn file_manifest_crash_resume_roundtrip() {
    let dir = std::env::temp_dir().join("smx-service-it");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("manifest.tsv");
    let _ = std::fs::remove_file(&path);

    let config = AlignmentConfig::DnaEdit;
    let pairs = gen_batch(config, 6, 60, 3);
    let exec = storm_executor(config, 3, 3);

    let mut writer = CheckpointWriter::create(&path).unwrap();
    let mut on_result = |i: usize, a: &Alignment| writer.record(i, a).unwrap();
    let full = exec
        .run_with(&pairs, RunOptions { on_result: Some(&mut on_result), ..RunOptions::default() });
    assert!(full.all_succeeded());
    drop(writer);

    // Crash: tear the file mid-line at 60% of its length.
    let len = std::fs::metadata(&path).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(len * 6 / 10).unwrap();
    drop(f);

    let manifest = Manifest::load(&path).unwrap();
    assert!(manifest.completed.len() < 6, "truncation must lose records");
    let mut writer = CheckpointWriter::append(&path).unwrap();
    let mut on_result = |i: usize, a: &Alignment| writer.record(i, a).unwrap();
    let resumed = exec.run_with(
        &pairs,
        RunOptions {
            resume: Some(&manifest.completed),
            on_result: Some(&mut on_result),
            ..RunOptions::default()
        },
    );
    drop(writer);
    assert!(resumed.all_succeeded());
    assert_eq!(resumed.outcomes, full.outcomes, "resume must be byte-identical");

    // The appended manifest is now complete: a third run resumes all.
    let manifest = Manifest::load(&path).unwrap();
    assert_eq!(manifest.completed.len(), 6);
    let third = exec.run_with(
        &pairs,
        RunOptions { resume: Some(&manifest.completed), ..RunOptions::default() },
    );
    assert_eq!(third.stats.resumed, 6);
    assert_eq!(third.stats.device_pairs + third.stats.software_pairs, 0);
    assert_eq!(third.outcomes, full.outcomes);
}

/// A corrupted line that is *not* the torn tail is a hard error naming
/// the line, end to end through the file loader.
#[test]
fn corrupted_manifest_line_is_a_lined_error() {
    let dir = std::env::temp_dir().join("smx-service-it-corrupt");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("manifest.tsv");

    let config = AlignmentConfig::DnaEdit;
    let pairs = gen_batch(config, 3, 40, 9);
    let exec = storm_executor(config, 9, 1);
    let mut writer = CheckpointWriter::create(&path).unwrap();
    let mut on_result = |i: usize, a: &Alignment| writer.record(i, a).unwrap();
    let report = exec
        .run_with(&pairs, RunOptions { on_result: Some(&mut on_result), ..RunOptions::default() });
    assert!(report.all_succeeded());
    drop(writer);

    // Flip the score digit on line 2 (jobs=1 writes in index order).
    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3);
    let mut broken: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
    broken[1] = broken[1].replacen('\t', "\t9", 1);
    std::fs::write(&path, broken.join("\n") + "\n").unwrap();

    match Manifest::load(&path) {
        Err(IoError::Parse { line, message }) => {
            assert_eq!(line, 2);
            assert!(message.contains("checksum mismatch"), "{message}");
        }
        other => panic!("expected a line-2 parse error, got {other:?}"),
    }
}
